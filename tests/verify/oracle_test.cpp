// The independent oracle against the constructive pipeline's own checker:
// over a fuzzed family of irregular topologies the peeling verdict must
// agree with verifyRouting()'s DFS verdict for both DOWN/UP and L-turn,
// a genuinely cyclic rule must be rejected with a valid witness cycle, and
// the state layer must catch a wedged occupancy that verifyRouting — which
// has no notion of network state — cannot see at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/downup_routing.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"
#include "verify/gate.hpp"
#include "verify/oracle.hpp"

namespace downup::verify {
namespace {

/// Undirected 6-cycle: the smallest topology on which an unrestricted turn
/// rule has a cyclic channel-dependency graph.
topo::Topology ringTopology(topo::NodeId n = 6) {
  topo::Topology ring(n);
  for (topo::NodeId v = 0; v < n; ++v) {
    ring.addLink(v, static_cast<topo::NodeId>((v + 1) % n));
  }
  return ring;
}

/// Every turn allowed (modulo the structural U-turn ban), every channel
/// nominally "down": the permission CDG equals the raw channel graph.
routing::TurnPermissions unrestrictedPerms(const topo::Topology& topo) {
  routing::DirectionMap dirs(topo.channelCount(), routing::Dir::kRdTree);
  return routing::TurnPermissions(topo, std::move(dirs),
                                  routing::TurnSet::allAllowed());
}

/// A witness cycle is only a witness if every consecutive pair really is a
/// permitted dependency on the claimed topology.
void expectValidRuleCycle(const topo::Topology& topo,
                          const routing::TurnPermissions& perms,
                          const std::vector<ChannelId>& cycle) {
  ASSERT_GE(cycle.size(), 2u);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ChannelId from = cycle[i];
    const ChannelId to = cycle[(i + 1) % cycle.size()];
    const topo::NodeId via = topo.channelDst(from);
    ASSERT_EQ(topo.channelSrc(to), via)
        << "witness edge " << from << " -> " << to
        << " is not head-to-tail at node " << via;
    EXPECT_TRUE(perms.allowed(via, from, to))
        << "witness edge " << from << " -> " << to
        << " is not permitted by the rule it claims to break";
  }
}

TEST(OracleCrossValidation, AgreesWithVerifyRoutingOverFuzzedTopologies) {
  // 50 seeded irregular SANs x {DOWN/UP, L-turn}: the two independent
  // formulations (peeling to the greatest fixed point vs three-color DFS)
  // must never disagree, and the deep table cross-check (forward-BFS
  // distance re-derivation) must match the table's reverse-BFS distances.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    const auto switches = static_cast<topo::NodeId>(8 + seed % 17);
    const topo::Topology topo =
        topo::randomIrregular(switches, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 1000);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

    for (const core::Algorithm algorithm :
         {core::Algorithm::kDownUp, core::Algorithm::kLTurn}) {
      const routing::Routing routing =
          core::buildRouting(algorithm, topo, ct);
      const routing::VerifyReport reference = routing::verifyRouting(routing);

      OracleInput input;
      input.perms = &routing.permissions();
      input.table = &routing.table();
      input.deepDistanceCheck = true;
      const OracleReport report = runOracle(input);

      ASSERT_EQ(report.ruleDeadlockFree, reference.deadlockFree)
          << "seed " << seed << " " << core::toString(algorithm)
          << ": oracle and verifyRouting disagree";
      ASSERT_TRUE(report.tableConsistent)
          << "seed " << seed << " " << core::toString(algorithm) << ": "
          << report.candidateViolations << " candidate violations, "
          << report.distanceMismatches << " distance mismatches";
      EXPECT_EQ(report.candidateViolations, 0u);
      EXPECT_EQ(report.distanceMismatches, 0u);
      EXPECT_TRUE(report.stateDrains);  // no occupancy given
      EXPECT_TRUE(report.ok()) << report.describe();
      EXPECT_EQ(report.ruleResidual, 0u);
      EXPECT_TRUE(report.ruleCycle.empty());
    }
  }
}

TEST(OracleNegative, UnrestrictedRingIsRejectedWithValidWitness) {
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);

  OracleInput input;
  input.perms = &perms;
  const OracleReport report = runOracle(input);

  EXPECT_FALSE(report.ruleDeadlockFree);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.ruleResidual, 0u);
  EXPECT_EQ(report.aliveChannels, ring.channelCount());
  expectValidRuleCycle(ring, perms, report.ruleCycle);
}

TEST(OracleNegative, UnrestrictedCopyOfRealRulePlantsGenuineCycle) {
  // unrestrictedCopy is the gate's fault injection: on any topology with
  // an undirected cycle it must turn a verified-acyclic DOWN/UP rule into
  // one the oracle rejects, with a witness that is valid under the COPY.
  util::Rng rng(7);
  const topo::Topology topo = topo::randomIrregular(20, {.maxPorts = 4}, rng);
  ASSERT_GE(topo.linkCount(), topo.nodeCount());  // guarantees a cycle
  util::Rng treeRng(1007);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  OracleInput healthy;
  healthy.perms = &routing.permissions();
  EXPECT_TRUE(runOracle(healthy).ruleDeadlockFree);

  const routing::TurnPermissions planted =
      unrestrictedCopy(routing.permissions());
  OracleInput corrupted;
  corrupted.perms = &planted;
  const OracleReport report = runOracle(corrupted);
  EXPECT_FALSE(report.ruleDeadlockFree);
  expectValidRuleCycle(topo, planted, report.ruleCycle);
}

TEST(OracleRule, DeadChannelsAreExcludedFromThePermissionGraph) {
  // Killing one link of the unrestricted ring breaks the only cycles: the
  // surviving channels form two directed chains, which peel completely.
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);

  std::vector<std::uint8_t> alive(ring.channelCount(), 1);
  alive[0] = 0;
  alive[1] = 0;  // both channels of link 0

  OracleInput input;
  input.perms = &perms;
  input.channelAlive = alive;
  const OracleReport report = runOracle(input);
  EXPECT_TRUE(report.ruleDeadlockFree);
  EXPECT_EQ(report.aliveChannels, ring.channelCount() - 2);
  EXPECT_EQ(report.ruleResidual, 0u);
}

TEST(OracleState, HoldCycleIsInvisibleToVerifyRoutingButCaughtHere) {
  // The insufficiency demonstration the gate exists for: a perfectly
  // acyclic published rule (verifyRouting says deadlock-free) coexisting
  // with a wedged occupancy — each worm holds a channel and extends onto
  // the next one around a loop.  verifyRouting audits rules, not states,
  // so its verdict stays clean; only the oracle's state layer (which peels
  // the hold/request graph) reports the wedge.
  util::Rng rng(11);
  const topo::Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(1011);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  ASSERT_TRUE(routing::verifyRouting(routing).deadlockFree);
  ASSERT_GE(topo.channelCount(), 6u);

  const std::vector<OccupancyEdge> wedged = {{0, 2}, {2, 4}, {4, 0}};
  OracleInput input;
  input.perms = &routing.permissions();
  input.holdEdges = wedged;
  const OracleReport report = runOracle(input);

  EXPECT_TRUE(report.ruleDeadlockFree);  // the rule itself is fine
  EXPECT_FALSE(report.stateDrains);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.stateResidual, 0u);
  ASSERT_FALSE(report.stateCycle.empty());
  for (const ChannelId c : report.stateCycle) {
    EXPECT_TRUE(c == 0 || c == 2 || c == 4)
        << "state witness strayed outside the planted cycle";
  }
}

TEST(OracleState, AcyclicOccupancyDrains) {
  util::Rng rng(13);
  const topo::Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(1013);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  ASSERT_GE(topo.channelCount(), 6u);

  // A straight-line worm chain plus a request onto its tail: no cycle, so
  // everything peels regardless of what the turn rule says about the hops.
  const std::vector<OccupancyEdge> holds = {{0, 2}, {2, 4}};
  const std::vector<OccupancyEdge> requests = {{5, 0}};
  OracleInput input;
  input.perms = &routing.permissions();
  input.holdEdges = holds;
  input.requestEdges = requests;
  const OracleReport report = runOracle(input);
  EXPECT_TRUE(report.stateDrains);
  EXPECT_EQ(report.stateResidual, 0u);
  EXPECT_TRUE(report.stateCycle.empty());
}

TEST(OracleState, RequestEdgesCloseCyclesHoldsAloneDoNot) {
  // A hold chain A->B plus a blocked header on B requesting A: the classic
  // two-worm wedge, representable only with both edge kinds.
  util::Rng rng(17);
  const topo::Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(1017);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  const std::vector<OccupancyEdge> holds = {{0, 2}};
  const std::vector<OccupancyEdge> requests = {{2, 0}};
  OracleInput input;
  input.perms = &routing.permissions();
  input.holdEdges = holds;
  const OracleReport holdsOnly = runOracle(input);
  EXPECT_TRUE(holdsOnly.stateDrains);

  input.requestEdges = requests;
  const OracleReport both = runOracle(input);
  EXPECT_FALSE(both.stateDrains);
  EXPECT_EQ(both.stateResidual, 2u);
}

TEST(OracleReportTest, DescribeNamesTheFailingLayers) {
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);
  OracleInput input;
  input.perms = &perms;
  const OracleReport bad = runOracle(input);
  EXPECT_NE(bad.describe().find("rule"), std::string::npos);

  OracleReport clean;
  clean.ruleDeadlockFree = true;
  EXPECT_EQ(clean.describe().find("rule"), std::string::npos);
}

}  // namespace
}  // namespace downup::verify
