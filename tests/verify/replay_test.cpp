// oracle_case/1 round-trip and strictness: a dumped witness reloads into an
// equivalent oracle input that reproduces the verdict, and malformed or
// truncated streams fail with a source:line diagnostic instead of loading
// partially.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "routing/direction.hpp"
#include "routing/turns.hpp"
#include "topology/topology.hpp"
#include "verify/oracle.hpp"
#include "verify/replay.hpp"

namespace downup::verify {
namespace {

topo::Topology ringTopology(topo::NodeId n = 5) {
  topo::Topology ring(n);
  for (topo::NodeId v = 0; v < n; ++v) {
    ring.addLink(v, static_cast<topo::NodeId>((v + 1) % n));
  }
  return ring;
}

routing::TurnPermissions unrestrictedPerms(const topo::Topology& topo) {
  routing::DirectionMap dirs(topo.channelCount(), routing::Dir::kRdTree);
  return routing::TurnPermissions(topo, std::move(dirs),
                                  routing::TurnSet::allAllowed());
}

/// Expects loadReplayCase to throw, with the source:line prefix present.
void expectLoadFailure(const std::string& text, std::string_view needle) {
  std::istringstream in(text);
  try {
    loadReplayCase(in, "test.jsonl");
    FAIL() << "load accepted a malformed case";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.jsonl:"), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(ReplayCaseTest, RoundTripReproducesVerdictAndContext) {
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);

  std::vector<std::uint8_t> alive(ring.channelCount(), 1);
  alive[6] = 0;
  const std::vector<OccupancyEdge> holds = {{0, 2}, {2, 4}};
  const std::vector<OccupancyEdge> requests = {{4, 0}};

  OracleInput input;
  input.perms = &perms;
  input.channelAlive = alive;
  input.holdEdges = holds;
  input.requestEdges = requests;
  const OracleReport report = runOracle(input);
  ASSERT_FALSE(report.ruleDeadlockFree);  // unrestricted ring
  ASSERT_FALSE(report.stateDrains);       // planted occupancy cycle

  CaseContext context;
  context.point = "mid_reconfig_quarantine";
  context.cycle = 1234;
  context.epoch = 9;
  context.waitForWitness = {1, 3};

  std::ostringstream out;
  writeReplayCase(out, input, report, context);

  std::istringstream in(out.str());
  const ReplayCase rc = loadReplayCase(in, "roundtrip.jsonl");
  EXPECT_EQ(rc.context.point, "mid_reconfig_quarantine");
  EXPECT_EQ(rc.context.cycle, 1234u);
  EXPECT_EQ(rc.context.epoch, 9u);
  EXPECT_EQ(rc.context.waitForWitness, (std::vector<ChannelId>{1, 3}));
  EXPECT_FALSE(rc.expectedRuleDeadlockFree);
  EXPECT_FALSE(rc.expectedStateDrains);
  EXPECT_EQ(rc.recordedRuleCycle, report.ruleCycle);
  EXPECT_EQ(rc.recordedStateCycle, report.stateCycle);
  ASSERT_EQ(rc.channelAlive.size(), ring.channelCount());
  EXPECT_EQ(rc.channelAlive[6], 0);

  // The reconstructed input reproduces the recorded verdict.
  const OracleReport replayed = runOracle(rc.input());
  EXPECT_EQ(replayed.ruleDeadlockFree, rc.expectedRuleDeadlockFree);
  EXPECT_EQ(replayed.stateDrains, rc.expectedStateDrains);
  EXPECT_EQ(replayed.ruleCycle, report.ruleCycle);
  EXPECT_EQ(replayed.stateCycle, report.stateCycle);
}

TEST(ReplayCaseTest, RejectsEmptyStream) {
  expectLoadFailure("", "empty file");
}

TEST(ReplayCaseTest, RejectsWrongSchema) {
  expectLoadFailure(
      R"({"schema":"oracle_case/9","point":"x","cycle":0,"epoch":0,)"
      R"("nodes":2,"links":1,"ruleDeadlockFree":true,"stateDrains":true,)"
      R"("tableConsistent":true})"
      "\n",
      "unsupported schema");
}

TEST(ReplayCaseTest, RejectsTruncatedLinkList) {
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);
  OracleInput input;
  input.perms = &perms;
  const OracleReport report = runOracle(input);
  std::ostringstream out;
  writeReplayCase(out, input, report, {.point = "t"});

  // Drop everything after the meta line and the first two link records.
  std::istringstream full(out.str());
  std::string truncated, line;
  for (int i = 0; i < 3 && std::getline(full, line); ++i) {
    truncated += line + "\n";
  }
  expectLoadFailure(truncated, "truncated case");
}

TEST(ReplayCaseTest, RejectsMissingDirRecords) {
  const topo::Topology ring = ringTopology();
  const routing::TurnPermissions perms = unrestrictedPerms(ring);
  OracleInput input;
  input.perms = &perms;
  const OracleReport report = runOracle(input);
  std::ostringstream out;
  writeReplayCase(out, input, report, {.point = "t"});

  // Keep every record except the dir lines: the loader must notice the
  // direction map is incomplete rather than defaulting silently.
  std::istringstream full(out.str());
  std::string stripped, line;
  while (std::getline(full, line)) {
    if (line.find("\"k\":\"dir\"") == std::string::npos) {
      stripped += line + "\n";
    }
  }
  expectLoadFailure(stripped, "no dir record");
}

TEST(ReplayCaseTest, RejectsOutOfRangeChannel) {
  expectLoadFailure(
      R"({"schema":"oracle_case/1","point":"x","cycle":0,"epoch":0,)"
      R"("nodes":2,"links":1,"ruleDeadlockFree":true,"stateDrains":true,)"
      R"("tableConsistent":true})"
      "\n"
      R"({"k":"link","id":0,"a":0,"b":1})"
      "\n"
      R"({"k":"dir","c":7,"d":0})"
      "\n",
      "out of range");
}

TEST(ReplayCaseTest, RejectsUnknownRecordKind) {
  expectLoadFailure(
      R"({"schema":"oracle_case/1","point":"x","cycle":0,"epoch":0,)"
      R"("nodes":2,"links":1,"ruleDeadlockFree":true,"stateDrains":true,)"
      R"("tableConsistent":true})"
      "\n"
      R"({"k":"gremlin","id":0})"
      "\n",
      "unknown record kind");
}

}  // namespace
}  // namespace downup::verify
