// OracleGate semantics: per-point audit ledger, the planted-violation fault
// injection (with its replayable dump), the global RoutingTable::build
// hook, and the bit-for-bit inertness contract — attaching a gate to a
// fault-injected simulation must not change a single statistic.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"
#include "verify/gate.hpp"
#include "verify/replay.hpp"

namespace downup::verify {
namespace {

topo::Topology makeTopo(std::uint64_t seed, topo::NodeId switches) {
  util::Rng rng(seed);
  return topo::randomIrregular(switches, {.maxPorts = 4}, rng);
}

tree::CoordinatedTree makeTree(const topo::Topology& topo,
                               std::uint64_t seed) {
  util::Rng treeRng(seed + 100);
  return tree::CoordinatedTree::build(topo, tree::TreePolicy::kM1SmallestFirst,
                                      treeRng);
}

/// Members are built in declaration order against the already-constructed
/// `topo` member, so the pointers Routing keeps into the topology stay
/// valid (a Scenario is never moved).
struct Scenario {
  explicit Scenario(std::uint64_t seed, topo::NodeId switches = 20)
      : topo(makeTopo(seed, switches)),
        ct(makeTree(topo, seed)),
        routing(core::buildDownUp(topo, ct)) {}

  topo::Topology topo;
  tree::CoordinatedTree ct;
  routing::Routing routing;
};

Scenario makeScenario(std::uint64_t seed, topo::NodeId switches = 20) {
  return Scenario(seed, switches);
}

TEST(OracleGateTest, LedgerCountsAuditsPerPoint) {
  const Scenario s = makeScenario(21);
  OracleGate gate;
  OracleInput input;
  input.perms = &s.routing.permissions();

  CaseContext context;
  context.point = "table_build";
  EXPECT_TRUE(gate.audit(input, context));
  EXPECT_TRUE(gate.audit(input, context));
  context.point = "epoch_publish";
  EXPECT_TRUE(gate.audit(input, context));

  EXPECT_EQ(gate.audits(), 3u);
  EXPECT_EQ(gate.violations(), 0u);
  EXPECT_EQ(gate.auditsAt("table_build"), 2u);
  EXPECT_EQ(gate.auditsAt("epoch_publish"), 1u);
  EXPECT_EQ(gate.auditsAt("never_seen"), 0u);
  EXPECT_TRUE(gate.lastCasePath().empty());
}

TEST(OracleGateTest, DisabledGatePassesWithoutAuditing) {
  const Scenario s = makeScenario(22);
  OracleGate::Options options;
  options.enabled = false;
  options.plantViolation = true;  // would fire if the gate ran
  OracleGate gate(options);

  OracleInput input;
  input.perms = &s.routing.permissions();
  EXPECT_TRUE(gate.audit(input, {.point = "table_build"}));
  EXPECT_EQ(gate.audits(), 0u);
  EXPECT_EQ(gate.violations(), 0u);
}

TEST(OracleGateTest, PlantedViolationFiresAndDumpsReplayableCase) {
  const Scenario s = makeScenario(23);
  ASSERT_GE(s.topo.linkCount(), s.topo.nodeCount());  // cycle exists

  OracleGate::Options options;
  options.plantViolation = true;
  options.dumpPathPrefix = ::testing::TempDir() + "gate_test_planted";
  OracleGate gate(options);

  OracleInput input;
  input.perms = &s.routing.permissions();
  CaseContext context;
  context.point = "epoch_publish";
  context.cycle = 42;
  context.epoch = 7;
  EXPECT_FALSE(gate.audit(input, context));

  EXPECT_EQ(gate.violations(), 1u);
  EXPECT_EQ(gate.casesDumped(), 1u);
  ASSERT_FALSE(gate.lastCasePath().empty());
  EXPECT_FALSE(gate.lastViolation().ruleDeadlockFree);

  // The dumped witness is replayable: reloading it and re-running the
  // oracle on the reconstructed (planted) rule reproduces the verdict.
  std::ifstream in(gate.lastCasePath());
  ASSERT_TRUE(in.is_open()) << gate.lastCasePath();
  const ReplayCase rc = loadReplayCase(in, gate.lastCasePath());
  EXPECT_EQ(rc.context.point, "epoch_publish");
  EXPECT_EQ(rc.context.cycle, 42u);
  EXPECT_EQ(rc.context.epoch, 7u);
  EXPECT_FALSE(rc.expectedRuleDeadlockFree);
  const OracleReport replayed = runOracle(rc.input());
  EXPECT_FALSE(replayed.ruleDeadlockFree);
  EXPECT_EQ(replayed.ruleDeadlockFree, rc.expectedRuleDeadlockFree);
}

TEST(OracleGateTest, DumpBudgetBoundsFilesNotViolations) {
  const Scenario s = makeScenario(24);
  OracleGate::Options options;
  options.plantViolation = true;
  options.dumpPathPrefix = ::testing::TempDir() + "gate_test_budget";
  options.maxDumpedCases = 1;
  OracleGate gate(options);

  OracleInput input;
  input.perms = &s.routing.permissions();
  EXPECT_FALSE(gate.audit(input, {.point = "table_build"}));
  EXPECT_FALSE(gate.audit(input, {.point = "table_build"}));
  EXPECT_EQ(gate.violations(), 2u);
  EXPECT_EQ(gate.casesDumped(), 1u);
}

TEST(OracleGateTest, BuildHookAuditsEveryTableConstruction) {
  const Scenario s = makeScenario(25);
  OracleGate gate;
  gate.installBuildHook();
  const std::uint64_t before = gate.auditsAt("table_build");

  // Routing's constructor builds a RoutingTable, which fires the hook.
  const routing::Routing rebuilt = core::buildDownUp(s.topo, s.ct);
  EXPECT_GT(gate.auditsAt("table_build"), before);
  EXPECT_EQ(gate.violations(), 0u);

  OracleGate::uninstallBuildHook();
  const std::uint64_t after = gate.auditsAt("table_build");
  const routing::Routing unaudited = core::buildDownUp(s.topo, s.ct);
  EXPECT_EQ(gate.auditsAt("table_build"), after);
  EXPECT_EQ(unaudited.table().fingerprint(), rebuilt.table().fingerprint());
}

TEST(OracleGateTest, FaultedSimulationIsBitForBitInertUnderTheGate) {
  // The gate's core contract: audits are read-only and draw no RNG, so a
  // fault-churned run produces identical statistics with and without it.
  const Scenario s = makeScenario(26, 16);

  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 200;
  config.measureCycles = 1500;
  config.reconfigLatencyCycles = 100;
  config.seed = 77;
  const fault::FaultSchedule schedule =
      fault::FaultSchedule::randomLinkFailures(s.topo, 1, 500, 1, 99);
  config.faultSchedule = &schedule;

  const sim::UniformTraffic traffic(s.topo.nodeCount());
  const auto runOnce = [&](OracleGate* gate) {
    sim::SimConfig c = config;
    c.oracleGate = gate;
    sim::WormholeNetwork net(s.routing.table(), traffic, 0.05, c);
    net.run();
    net.drainRemaining(100000);
    return net.collectStats();
  };

  const sim::RunStats plain = runOnce(nullptr);
  OracleGate gate;
  const sim::RunStats gated = runOnce(&gate);

  // The gate really ran (reconfiguration + both mid-reconfig points)...
  EXPECT_GT(gate.audits(), 0u);
  EXPECT_GE(gate.auditsAt("mid_reconfig_quarantine"), 1u);
  EXPECT_GE(gate.auditsAt("mid_reconfig_preswap"), 1u);
  EXPECT_GE(gate.auditsAt("epoch_publish"), 1u);
  EXPECT_EQ(gate.violations(), 0u);

  // ...and changed nothing.
  EXPECT_EQ(gated.cycles, plain.cycles);
  EXPECT_EQ(gated.packetsGenerated, plain.packetsGenerated);
  EXPECT_EQ(gated.packetsEjectedMeasured, plain.packetsEjectedMeasured);
  EXPECT_EQ(gated.avgLatency, plain.avgLatency);
  EXPECT_EQ(gated.p99Latency, plain.p99Latency);
  EXPECT_EQ(gated.acceptedFlitsPerNodePerCycle,
            plain.acceptedFlitsPerNodePerCycle);
  EXPECT_EQ(gated.reconfigurations, plain.reconfigurations);
  EXPECT_EQ(gated.packetsDroppedTotal(), plain.packetsDroppedTotal());
  EXPECT_EQ(gated.channelUtilization, plain.channelUtilization);
}

}  // namespace
}  // namespace downup::verify
