#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace downup::util {
namespace {

TEST(Cli, ParsesTypedOptions) {
  Cli cli("prog", "test");
  auto ports = cli.option<int>("ports", 4, "port count");
  auto rate = cli.option<double>("rate", 0.1, "injection rate");
  auto name = cli.option<std::string>("name", "default", "label");
  auto full = cli.flag("full", "paper scale");

  std::string error;
  EXPECT_TRUE(cli.tryParse({"--ports", "8", "--rate", "0.25", "--name", "x",
                            "--full"},
                           &error))
      << error;
  EXPECT_EQ(*ports, 8);
  EXPECT_DOUBLE_EQ(*rate, 0.25);
  EXPECT_EQ(*name, "x");
  EXPECT_TRUE(*full);
}

TEST(Cli, DefaultsSurviveEmptyArgs) {
  Cli cli("prog", "test");
  auto ports = cli.option<int>("ports", 4, "port count");
  auto full = cli.flag("full", "paper scale");
  std::string error;
  EXPECT_TRUE(cli.tryParse({}, &error));
  EXPECT_EQ(*ports, 4);
  EXPECT_FALSE(*full);
}

TEST(Cli, EqualsSyntax) {
  Cli cli("prog", "test");
  auto seed = cli.option<std::uint64_t>("seed", 1, "rng seed");
  std::string error;
  EXPECT_TRUE(cli.tryParse({"--seed=12345"}, &error)) << error;
  EXPECT_EQ(*seed, 12345u);
}

TEST(Cli, RejectsUnknownOption) {
  Cli cli("prog", "test");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--bogus", "1"}, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(Cli, RejectsBadValue) {
  Cli cli("prog", "test");
  auto ports = cli.option<int>("ports", 4, "port count");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--ports", "eight"}, &error));
  EXPECT_NE(error.find("ports"), std::string::npos);
  EXPECT_EQ(*ports, 4);
}

TEST(Cli, PositiveOptionRejectsZeroAndNegative) {
  Cli cli("prog", "test");
  auto switches = cli.positiveOption<int>("switches", 32, "switch count");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--switches", "0"}, &error));
  EXPECT_NE(error.find("--switches"), std::string::npos);
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
  EXPECT_EQ(*switches, 32) << "failed parse must not clobber the default";

  EXPECT_FALSE(cli.tryParse({"--switches", "-8"}, &error));
  EXPECT_NE(error.find("positive"), std::string::npos) << error;
  EXPECT_EQ(*switches, 32);

  EXPECT_TRUE(cli.tryParse({"--switches", "64"}, &error)) << error;
  EXPECT_EQ(*switches, 64);
}

TEST(Cli, PositiveOptionRejectsMalformedIntegers) {
  Cli cli("prog", "test");
  auto ports = cli.positiveOption<int>("ports", 4, "port count");
  std::string error;
  for (const char* bad : {"4x", "x4", "4.5", "", "0x10", "++3"}) {
    EXPECT_FALSE(cli.tryParse({"--ports", bad}, &error))
        << "accepted '" << bad << "'";
    EXPECT_EQ(*ports, 4);
  }
}

TEST(Cli, UnsignedOptionRejectsNegativeInsteadOfWrapping) {
  Cli cli("prog", "test");
  auto seed = cli.option<std::uint64_t>("seed", 1, "rng seed");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--seed", "-1"}, &error));
  EXPECT_EQ(*seed, 1u) << "'-1' must not wrap to 2^64-1";
}

TEST(Cli, RejectsMissingValue) {
  Cli cli("prog", "test");
  cli.option<int>("ports", 4, "port count");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--ports"}, &error));
}

TEST(Cli, RejectsValueOnFlag) {
  Cli cli("prog", "test");
  cli.flag("full", "paper scale");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--full=yes"}, &error));
}

TEST(Cli, RejectsPositional) {
  Cli cli("prog", "test");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"positional"}, &error));
}

TEST(Cli, HelpSignals) {
  Cli cli("prog", "test");
  std::string error;
  EXPECT_FALSE(cli.tryParse({"--help"}, &error));
  EXPECT_EQ(error, "help");
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  Cli cli("prog", "does things");
  cli.option<int>("ports", 4, "port count");
  cli.flag("full", "paper scale");
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--ports"), std::string::npos);
  EXPECT_NE(usage.find("default: 4"), std::string::npos);
  EXPECT_NE(usage.find("--full"), std::string::npos);
}

}  // namespace
}  // namespace downup::util
