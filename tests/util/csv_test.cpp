#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace downup::util {
namespace {

TEST(CsvWriter, PlainRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b", "c"});
  csv.cell("x").cell(1).cell(2.5);
  csv.endRow();
  EXPECT_EQ(out.str(), "a,b,c\nx,1,2.5\n");
  EXPECT_EQ(csv.rowsWritten(), 1u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("has,comma").cell("has\"quote").cell("has\nnewline");
  csv.endRow();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvWriter, NumericFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell(-3LL).cell(42u).cell(0.000125).cell(std::size_t{7});
  csv.endRow();
  EXPECT_EQ(out.str(), "-3,42,0.000125,7\n");
}

TEST(CsvWriter, HeaderAfterRowThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell("x");
  csv.endRow();
  EXPECT_THROW(csv.header({"late"}), std::logic_error);
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace downup::util
