#include "util/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace downup::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 5.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownPopulation) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, SampleVarianceUsesNMinusOne) {
  RunningStat stat;
  for (double x : {1.0, 2.0, 3.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.sampleVariance(), 1.0);
  EXPECT_NEAR(stat.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat left;
  RunningStat right;
  RunningStat combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    left.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 70; ++i) {
    const double x = i * -0.21 + 10.0;
    right.add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  RunningStat empty;
  stat.merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);

  RunningStat target;
  target.merge(stat);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(MeanAndStddev, SpanHelpers) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(populationStddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(populationStddev({}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputAndClamping) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(Histogram, BinsAndClamps) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(0.5);    // bin 0
  histogram.add(3.0);    // bin 1
  histogram.add(9.99);   // bin 4
  histogram.add(-5.0);   // clamps to bin 0
  histogram.add(100.0);  // clamps to bin 4
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.binValue(0), 2u);
  EXPECT_EQ(histogram.binValue(1), 1u);
  EXPECT_EQ(histogram.binValue(2), 0u);
  EXPECT_EQ(histogram.binValue(4), 2u);
  EXPECT_DOUBLE_EQ(histogram.binLow(1), 2.0);
}

}  // namespace
}  // namespace downup::util
