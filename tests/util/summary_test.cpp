#include "util/summary.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace downup::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 5.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownPopulation) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, SampleVarianceUsesNMinusOne) {
  RunningStat stat;
  for (double x : {1.0, 2.0, 3.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.sampleVariance(), 1.0);
  EXPECT_NEAR(stat.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat left;
  RunningStat right;
  RunningStat combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    left.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 70; ++i) {
    const double x = i * -0.21 + 10.0;
    right.add(x);
    combined.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(3.0);
  RunningStat empty;
  stat.merge(empty);
  EXPECT_EQ(stat.count(), 2u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);

  RunningStat target;
  target.merge(stat);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(MeanAndStddev, SpanHelpers) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(populationStddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(populationStddev({}), 0.0);
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputAndClamping) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 9.0);
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
}

TEST(QuantileSketch, EmptyIsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_DOUBLE_EQ(sketch.mean(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_TRUE(sketch.exact());
}

TEST(QuantileSketch, ExactPhaseMatchesSpanHelpers) {
  QuantileSketch sketch;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = (i * 7919) % 997 * 0.25;
    sketch.add(x);
    xs.push_back(x);
  }
  ASSERT_TRUE(sketch.exact());
  EXPECT_EQ(sketch.count(), xs.size());
  // Exact phase is bit-for-bit: the mean is a running sum in insertion
  // order and quantiles delegate to util::quantile on the full sample.
  EXPECT_DOUBLE_EQ(sketch.mean(), mean(xs));
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), quantile(xs, 0.5));
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), quantile(xs, 0.99));
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  ASSERT_EQ(sketch.exactValues().size(), xs.size());
  EXPECT_DOUBLE_EQ(sketch.exactValues()[17], xs[17]);
}

TEST(QuantileSketch, CollapsedPhaseStaysClose) {
  QuantileSketch sketch(/*exactCap=*/256, /*bins=*/512);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) {
    const double x = static_cast<double>((i * 131) % 1000);
    sketch.add(x);
    xs.push_back(x);
  }
  EXPECT_FALSE(sketch.exact());
  EXPECT_TRUE(sketch.exactValues().empty());
  EXPECT_EQ(sketch.count(), xs.size());
  // The mean stays exact through the collapse; quantiles are interpolated
  // within fixed-width bins, so the error is bounded by the bin width.
  EXPECT_DOUBLE_EQ(sketch.mean(), mean(xs));
  const double binWidth = 1.5 * 1000.0 / 512.0;
  EXPECT_NEAR(sketch.quantile(0.5), quantile(xs, 0.5), binWidth);
  EXPECT_NEAR(sketch.quantile(0.99), quantile(xs, 0.99), binWidth);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 999.0);
  // Extreme quantiles clamp to the tracked min/max, never off the range.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 999.0);
}

TEST(QuantileSketch, ConstantStreamCollapses) {
  QuantileSketch sketch(/*exactCap=*/8, /*bins=*/16);
  for (int i = 0; i < 100; ++i) sketch.add(42.0);
  EXPECT_FALSE(sketch.exact());
  EXPECT_DOUBLE_EQ(sketch.mean(), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.0);
}

TEST(QuantileSketch, SnapshotOfEmptyWindowIsAllZero) {
  const QuantileSketch sketch;
  const QuantileSketch::Snapshot snap = sketch.snapshot();
  EXPECT_EQ(snap, QuantileSketch::Snapshot{});
}

TEST(QuantileSketch, SnapshotOfSingleSample) {
  QuantileSketch sketch;
  sketch.add(37.5);
  const QuantileSketch::Snapshot snap = sketch.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.mean, 37.5);
  EXPECT_DOUBLE_EQ(snap.min, 37.5);
  EXPECT_DOUBLE_EQ(snap.max, 37.5);
  EXPECT_DOUBLE_EQ(snap.p50, 37.5);
  EXPECT_DOUBLE_EQ(snap.p99, 37.5);
}

TEST(QuantileSketch, ClearReusesWithoutStaleState) {
  QuantileSketch sketch(/*exactCap=*/8, /*bins=*/16);
  for (int i = 0; i < 100; ++i) sketch.add(1000.0);  // force the collapse
  sketch.clear();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_TRUE(sketch.exact());
  EXPECT_EQ(sketch.snapshot(), QuantileSketch::Snapshot{});
  sketch.add(2.0);
  sketch.add(4.0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 3.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 2.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 4.0);
}

TEST(QuantileSketch, MergeWithEmptySidesIsIdentity) {
  QuantileSketch target;
  const QuantileSketch empty;
  target.mergeFrom(empty);  // empty into empty
  EXPECT_EQ(target.count(), 0u);
  target.add(7.0);
  target.mergeFrom(empty);  // empty into populated
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.mean(), 7.0);
  QuantileSketch fresh;
  fresh.mergeFrom(target);  // populated into empty
  EXPECT_EQ(fresh.count(), 1u);
  EXPECT_DOUBLE_EQ(fresh.quantile(0.5), 7.0);
}

TEST(QuantileSketch, ExactMergeMatchesSequentialAdds) {
  QuantileSketch merged;
  QuantileSketch other;
  QuantileSketch reference;
  for (int i = 0; i < 50; ++i) {
    merged.add(i);
    reference.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    other.add(i);
    reference.add(i);
  }
  merged.mergeFrom(other);
  EXPECT_TRUE(merged.exact());
  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.mean(), reference.mean());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), reference.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeOfDisjointCollapsedWindowsBoundsError) {
  // Two windows over disjoint ranges, both past their exact capacity: the
  // merge re-bins other's histogram, so count/mean/min/max stay exact and
  // quantiles land within the coarser bin width.
  QuantileSketch low(/*exactCap=*/32, /*bins=*/64);
  QuantileSketch high(/*exactCap=*/32, /*bins=*/64);
  std::vector<double> all;
  for (int i = 0; i < 100; ++i) {
    low.add(i);
    all.push_back(i);
  }
  for (int i = 1000; i < 1100; ++i) {
    high.add(i);
    all.push_back(i);
  }
  EXPECT_FALSE(low.exact());
  EXPECT_FALSE(high.exact());
  low.mergeFrom(high);
  EXPECT_EQ(low.count(), all.size());
  EXPECT_DOUBLE_EQ(low.mean(), mean(all));
  EXPECT_DOUBLE_EQ(low.min(), 0.0);
  EXPECT_DOUBLE_EQ(low.max(), 1099.0);
  // The merged grid spans [0, 1099], so allow a few bin widths of
  // interpolation error.  (Quantiles are probed inside each cluster — at
  // the inter-cluster gap the raw-sample interpolation between 99 and 1000
  // and a histogram rank lookup legitimately disagree.)
  const double binWidth = 1.5 * (1099.0 - 0.0) / 64.0;
  EXPECT_NEAR(low.quantile(0.25), quantile(all, 0.25), 3 * binWidth);
  EXPECT_NEAR(low.quantile(0.9), quantile(all, 0.9), 3 * binWidth);
}

TEST(QuantileSketch, MergeExactIntoCollapsedKeepsMomentsExact) {
  QuantileSketch collapsed(/*exactCap=*/16, /*bins=*/32);
  for (int i = 0; i < 64; ++i) collapsed.add(i);
  QuantileSketch exact;
  exact.add(10.0);
  exact.add(20.0);
  const double expectedMean =
      (63.0 * 64.0 / 2.0 + 30.0) / static_cast<double>(64 + 2);
  collapsed.mergeFrom(exact);
  EXPECT_EQ(collapsed.count(), 66u);
  EXPECT_DOUBLE_EQ(collapsed.mean(), expectedMean);
}

TEST(Histogram, BinsAndClamps) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(0.5);    // bin 0
  histogram.add(3.0);    // bin 1
  histogram.add(9.99);   // bin 4
  histogram.add(-5.0);   // clamps to bin 0
  histogram.add(100.0);  // clamps to bin 4
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_EQ(histogram.binValue(0), 2u);
  EXPECT_EQ(histogram.binValue(1), 1u);
  EXPECT_EQ(histogram.binValue(2), 0u);
  EXPECT_EQ(histogram.binValue(4), 2u);
  EXPECT_DOUBLE_EQ(histogram.binLow(1), 2.0);
}

}  // namespace
}  // namespace downup::util
