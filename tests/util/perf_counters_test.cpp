// PerfCounterGroup: the unavailable-fallback contract (absent counters are
// reported with a reason, never as silent zeros), pure PerfCounts mask
// arithmetic, and — when the environment grants perf_event_open — read
// monotonicity plus delta monotonicity under span nesting.
#include "util/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "util/span_recorder.hpp"

namespace downup::util {
namespace {

constexpr std::uint8_t kFullMask = (1u << kPerfEventCount) - 1u;

void setCount(PerfCounts& counts, PerfEvent event, std::uint64_t v) {
  counts.value[static_cast<std::uint8_t>(event)] = v;
  counts.mask |= static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(event));
}

TEST(PerfCountsTest, DerivedRatesAreAbsentNotZeroWhenEventsAreMissing) {
  PerfCounts counts;
  EXPECT_TRUE(counts.empty());
  EXPECT_LT(counts.ipc(), 0.0);
  EXPECT_LT(counts.cacheMissRate(), 0.0);
  EXPECT_LT(counts.branchMissesPerKiloInstruction(), 0.0);

  setCount(counts, PerfEvent::kCycles, 1000);
  // Instructions still missing: IPC must stay absent.
  EXPECT_LT(counts.ipc(), 0.0);
  setCount(counts, PerfEvent::kInstructions, 2500);
  EXPECT_DOUBLE_EQ(counts.ipc(), 2.5);

  setCount(counts, PerfEvent::kCacheReferences, 200);
  setCount(counts, PerfEvent::kCacheMisses, 50);
  EXPECT_DOUBLE_EQ(counts.cacheMissRate(), 0.25);
}

TEST(PerfCountsTest, DeltaIntersectsMasksAndAccumulateUnionsThem) {
  PerfCounts before;
  setCount(before, PerfEvent::kTaskClock, 100);
  setCount(before, PerfEvent::kCycles, 1000);

  PerfCounts after;
  setCount(after, PerfEvent::kTaskClock, 150);
  setCount(after, PerfEvent::kInstructions, 9000);

  const PerfCounts delta = after.deltaSince(before);
  // Only events present on BOTH sides survive the delta.
  EXPECT_TRUE(delta.has(PerfEvent::kTaskClock));
  EXPECT_FALSE(delta.has(PerfEvent::kCycles));
  EXPECT_FALSE(delta.has(PerfEvent::kInstructions));
  EXPECT_EQ(delta.get(PerfEvent::kTaskClock), 50u);

  // A counter that went backwards (clock skew) saturates at 0 instead of
  // wrapping to a huge unsigned value.
  PerfCounts regressed;
  setCount(regressed, PerfEvent::kTaskClock, 80);
  const PerfCounts clamped = regressed.deltaSince(before);
  EXPECT_EQ(clamped.get(PerfEvent::kTaskClock), 0u);

  PerfCounts sum;
  sum.accumulate(delta);
  sum.accumulate(after);
  EXPECT_TRUE(sum.has(PerfEvent::kTaskClock));
  EXPECT_TRUE(sum.has(PerfEvent::kInstructions));
  EXPECT_EQ(sum.get(PerfEvent::kTaskClock), 200u);
  EXPECT_EQ(sum.get(PerfEvent::kInstructions), 9000u);
}

TEST(PerfCounterGroupTest, ForcedDisabledGroupReportsAReasonAndReadsEmpty) {
  PerfCounterGroup group(PerfCounterGroup::Options{.disabled = true});
  EXPECT_FALSE(group.available());
  EXPECT_EQ(group.eventMask(), 0u);
  EXPECT_EQ(group.unavailableReason(), "disabled by caller");
  EXPECT_TRUE(group.read().empty());
}

TEST(PerfCounterGroupTest, LiveGroupIsEitherReasonedOrMonotone) {
  PerfCounterGroup group;
  if (!group.available()) {
    // The fallback path must explain itself (no PMU, seccomp, paranoid).
    EXPECT_FALSE(group.unavailableReason().empty());
    EXPECT_TRUE(group.read().empty());
    return;
  }
  if (group.eventMask() != kFullMask) {
    // Partial groups likewise carry a reason for the missing events.
    EXPECT_FALSE(group.degradedReason().empty());
  }
  const PerfCounts first = group.read();
  EXPECT_EQ(first.mask, group.eventMask());
  // Burn some cycles so the counters visibly advance.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<std::uint64_t>(i);
  const PerfCounts second = group.read();
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    const auto event = static_cast<PerfEvent>(e);
    if (!group.has(event)) continue;
    EXPECT_GE(second.get(event), first.get(event)) << toString(event);
  }
}

TEST(PerfCounterGroupTest, NestedSpanDeltasNeverExceedTheirParent) {
  PerfCounterGroup group;
  if (!group.available()) {
    GTEST_SKIP() << "perf_event_open unavailable: "
                 << group.unavailableReason();
  }
  SpanRecorder rec;
  rec.attachCounters(&group);
  {
    ScopedSpan parent(&rec, "rebuild");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50000; ++i) sink += static_cast<std::uint64_t>(i);
    {
      ScopedSpan child(&rec, "table_build");
      for (int i = 0; i < 50000; ++i) sink += static_cast<std::uint64_t>(i);
    }
    for (int i = 0; i < 50000; ++i) sink += static_cast<std::uint64_t>(i);
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& parent = spans[0];
  const auto& child = spans[1];
  ASSERT_EQ(parent.depth, 0u);
  ASSERT_EQ(child.depth, 1u);
  EXPECT_EQ(parent.counters.mask, group.eventMask());
  EXPECT_EQ(child.counters.mask, group.eventMask());
  for (std::size_t e = 0; e < kPerfEventCount; ++e) {
    const auto event = static_cast<PerfEvent>(e);
    if (!group.has(event)) continue;
    EXPECT_LE(child.counters.get(event), parent.counters.get(event))
        << toString(event);
  }
}

TEST(PerfCounterGroupTest, SpansOffTheAttachingThreadCarryNoCounters) {
  PerfCounterGroup group;
  SpanRecorder rec;
  rec.attachCounters(&group);
  std::thread other([&rec] {
    ScopedSpan span(&rec, "rebuild");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink += static_cast<std::uint64_t>(i);
  });
  other.join();
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  // Counters are a per-thread measurement; a foreign thread's span must not
  // report the attaching thread's deltas.
  EXPECT_TRUE(spans[0].counters.empty());
}

}  // namespace
}  // namespace downup::util
