#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace downup::util {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_TRUE(std::is_permutation(shuffled.begin(), shuffled.end(),
                                  values.begin()));
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> values(64);
  for (int i = 0; i < 64; ++i) values[i] = i;
  auto shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, values);  // probability of identity is ~1/64!
}

TEST(Rng, PickDrawsOnlyFromTheSpan) {
  Rng rng(19);
  const std::vector<int> items = {10, 20, 30};
  std::array<int, 3> counts{};
  for (int i = 0; i < 3000; ++i) {
    const int value = rng.pick(std::span<const int>(items));
    ASSERT_TRUE(value == 10 || value == 20 || value == 30);
    ++counts[static_cast<std::size_t>(value / 10 - 1)];
  }
  for (int count : counts) EXPECT_GT(count, 800);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(21);
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == child()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(31);
  const auto perm = randomPermutation(100, rng);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RandomPermutation, EmptyAndSingle) {
  Rng rng(33);
  EXPECT_TRUE(randomPermutation(0, rng).empty());
  const auto one = randomPermutation(1, rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

}  // namespace
}  // namespace downup::util
