// Per-span allocation attribution, asserted through a real global-new
// override: heap traffic is charged to the calling thread's INNERMOST
// alloc-tracking span (exclusive attribution), threads charge their own
// spans independently, and the disabled path — no tracking span open, or a
// null recorder — performs zero allocations of its own.
//
// Technique (same as tests/core/release_alloc_test.cpp, one override per
// test binary): the global allocation functions are replaced with wrappers
// that feed util::noteAllocation — exactly what util/alloc_hooks.hpp does
// in the benches — plus an off-by-default counter for the zero-allocation
// assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string_view>
#include <thread>

#include "util/span_recorder.hpp"

namespace {

std::atomic<bool> g_countAllocations{false};
std::atomic<std::uint64_t> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_countAllocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) downup::util::noteAllocation(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace downup::util {
namespace {

// Direct calls to the allocation functions: a new-EXPRESSION paired with
// its delete may legally be elided at -O2, which would bypass the hooks
// entirely; direct operator-new calls may not.
void heapChurn(std::size_t bytes, int count) {
  for (int i = 0; i < count; ++i) {
    void* p = ::operator new(bytes);
    ::operator delete(p);
  }
}

TEST(AllocAttributionTest, ChargesTheInnermostTrackingSpanExclusively) {
  SpanRecorder rec;
  rec.setAllocTracking(true);
  {
    ScopedSpan outer(&rec, "rebuild");
    heapChurn(1000, 2);
    {
      ScopedSpan inner(&rec, "table_build");
      heapChurn(100000, 3);
    }
    // After the inner span closes, charges must flow to the outer span
    // again (the tracking chain restores on pop).
    heapChurn(1000, 1);
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& outer = spans[0];
  const auto& inner = spans[1];
  ASSERT_EQ(inner.depth, 1u);

  EXPECT_TRUE(outer.allocTracked);
  EXPECT_TRUE(inner.allocTracked);
  // The inner scope performed exactly three heap allocations.
  EXPECT_EQ(inner.allocCount, 3u);
  EXPECT_EQ(inner.allocBytes, 300000u);
  // The outer span carries its own three 1000-byte allocations plus the
  // recorder's internal bookkeeping for opening the inner span — but NONE
  // of the inner span's 300000 bytes (exclusive attribution).
  EXPECT_GE(outer.allocCount, 3u);
  EXPECT_GE(outer.allocBytes, 3000u);
  EXPECT_LT(outer.allocBytes, 100000u);
}

TEST(AllocAttributionTest, ThreadsChargeTheirOwnSpansIndependently) {
  SpanRecorder rec;
  rec.setAllocTracking(true);
  auto worker = [&rec](const char* name, std::size_t bytes, int count) {
    ScopedSpan span(&rec, name);
    heapChurn(bytes, count);
  };
  std::thread a(worker, "thread_a", 2048, 2);
  std::thread b(worker, "thread_b", 512, 5);
  a.join();
  b.join();

  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const auto& span : spans) {
    if (std::string_view(span.name) == "thread_a") {
      EXPECT_EQ(span.allocCount, 2u);
      EXPECT_EQ(span.allocBytes, 4096u);
    } else {
      ASSERT_EQ(std::string_view(span.name), "thread_b");
      EXPECT_EQ(span.allocCount, 5u);
      EXPECT_EQ(span.allocBytes, 2560u);
    }
    EXPECT_TRUE(span.allocTracked);
  }
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

TEST(AllocAttributionTest, SpansWithoutTrackingReportUntrackedZero) {
  SpanRecorder rec;  // alloc tracking stays at its default: off
  {
    ScopedSpan span(&rec, "rebuild");
    heapChurn(4096, 1);
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].allocTracked);
  EXPECT_EQ(spans[0].allocCount, 0u);
  EXPECT_EQ(spans[0].allocBytes, 0u);
}

TEST(AllocAttributionTest, DisabledPathPerformsZeroAllocations) {
  // The two disabled paths the benches rely on being free:
  //   1. noteAllocation with no tracking span open (every allocation in a
  //      hook-carrying binary pays this),
  //   2. ScopedSpan handed a null recorder (every instrumentation point in
  //      an untraced run).
  g_allocations.store(0);
  g_countAllocations.store(true);
  for (int i = 0; i < 1000; ++i) noteAllocation(64);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(nullptr, "rebuild");
    span.arg("batch", 1);
  }
  g_countAllocations.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "disabled-path instrumentation allocated";

  // Control: the counter itself works — real allocations are seen.
  g_allocations.store(0);
  g_countAllocations.store(true);
  heapChurn(16, 100);
  g_countAllocations.store(false);
  EXPECT_EQ(g_allocations.load(), 100u);
}

}  // namespace
}  // namespace downup::util
