#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace downup::util {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  parallelFor(pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, EmptyRange) {
  ThreadPool pool(2);
  parallelFor(pool, 0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ParallelFor, NestedFanOutCompletesWithoutDeadlock) {
  // Outer items fan out across the pool; each outer item fans out again
  // from inside a pool task.  The work-sharing group has the calling thread
  // drain its own items, so this must complete at any pool width.
  ThreadPool pool(2);
  static constexpr std::size_t kOuter = 8;
  static constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallelFor(pool, kOuter, [&](std::size_t outer) {
    parallelFor(pool, kInner, [&hits, outer](std::size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelFor, NullPoolRunsSerially) {
  std::vector<int> order;
  parallelFor(nullptr, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));  // single-threaded: no race
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace downup::util
