// Full-pipeline integration: topology -> tree -> routing -> simulation ->
// paper metrics, exactly the path the experiment benches take.
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "routing/verify.hpp"
#include "sim/engine.hpp"
#include "stats/metrics.hpp"
#include "topology/generate.hpp"
#include "topology/io.hpp"

#include <sstream>

namespace downup {
namespace {

TEST(EndToEnd, QuickPipelineProducesSaneMetrics) {
  util::Rng rng(2004);
  const topo::Topology topo =
      topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  for (core::Algorithm algorithm :
       {core::Algorithm::kLTurn, core::Algorithm::kDownUp}) {
    const routing::Routing routing = core::buildRouting(algorithm, topo, ct);
    ASSERT_TRUE(routing::verifyRouting(routing).ok());

    sim::SimConfig config;
    config.packetLengthFlits = 16;
    config.warmupCycles = 500;
    config.measureCycles = 4000;
    const sim::UniformTraffic traffic(topo.nodeCount());
    const sim::RunStats stats =
        sim::simulate(routing.table(), traffic, 0.08, config);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_GT(stats.acceptedFlitsPerNodePerCycle, 0.0);
    EXPECT_GT(stats.avgLatency, 16.0);  // at least the serialization time

    const stats::PaperMetrics metrics =
        stats::computePaperMetrics(topo, ct, stats.channelUtilization);
    EXPECT_GT(metrics.meanNodeUtilization, 0.0);
    EXPECT_LT(metrics.meanNodeUtilization, 1.0);
    EXPECT_GE(metrics.hotspotDegreePercent, 0.0);
    EXPECT_LE(metrics.hotspotDegreePercent, 100.0);
    EXPECT_GE(metrics.leafUtilization, 0.0);
  }
}

TEST(EndToEnd, TopologyRoundTripsThroughSerialization) {
  util::Rng rng(77);
  const topo::Topology original =
      topo::randomIrregular(48, {.maxPorts = 8}, rng);
  std::stringstream buffer;
  topo::save(original, buffer);
  const topo::Topology reloaded = topo::load(buffer);

  util::Rng treeRng(3);
  const tree::CoordinatedTree ctA = tree::CoordinatedTree::build(
      original, tree::TreePolicy::kM1SmallestFirst, treeRng);
  util::Rng treeRng2(3);
  const tree::CoordinatedTree ctB = tree::CoordinatedTree::build(
      reloaded, tree::TreePolicy::kM1SmallestFirst, treeRng2);

  const routing::Routing a = core::buildDownUp(original, ctA);
  const routing::Routing b = core::buildDownUp(reloaded, ctB);
  for (topo::NodeId s = 0; s < original.nodeCount(); ++s) {
    for (topo::NodeId d = 0; d < original.nodeCount(); ++d) {
      EXPECT_EQ(a.table().distance(s, d), b.table().distance(s, d));
    }
  }
}

TEST(EndToEnd, DownUpBeatsUpDownOnPathLengthOnAverage) {
  // A coarse shape check at build level: the adaptive turn-model routings
  // should not have longer average legal paths than plain up*/down*.
  double downupSum = 0.0;
  double updownSum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const topo::Topology topo =
        topo::randomIrregular(48, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
    downupSum += core::buildDownUp(topo, ct).table().averagePathLength();
    updownSum += routing::buildUpDown(topo, ct).table().averagePathLength();
  }
  EXPECT_LE(downupSum, updownSum * 1.15);
}

TEST(EndToEnd, AllAlgorithmsSurviveAHotspotStorm) {
  util::Rng rng(31);
  const topo::Topology topo =
      topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(32);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);

  sim::SimConfig config;
  config.packetLengthFlits = 32;
  config.warmupCycles = 500;
  config.measureCycles = 8000;
  config.deadlockThresholdCycles = 3000;
  const sim::HotspotTraffic traffic(topo.nodeCount(), 0, 0.4);

  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    const routing::Routing routing = core::buildRouting(algorithm, topo, ct);
    const sim::RunStats stats =
        sim::simulate(routing.table(), traffic, 0.5, config);
    EXPECT_FALSE(stats.deadlocked) << core::toString(algorithm);
    EXPECT_GT(stats.flitsEjectedMeasured, 0u) << core::toString(algorithm);
  }
}

}  // namespace
}  // namespace downup
