// Scale smoke tests: the full pipeline at sizes well beyond the paper's
// 128 switches, plus cross-cutting integration (serialized routing drives
// the simulator identically to the original).
#include <gtest/gtest.h>

#include <sstream>

#include "core/downup_routing.hpp"
#include "routing/serialize.hpp"
#include "routing/verify.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"

namespace downup {
namespace {

TEST(Scale, FiveHundredTwelveSwitchesBuildAndVerify) {
  util::Rng rng(2026);
  const topo::Topology topo =
      topo::randomIrregular(512, {.maxPorts = 4}, rng);
  EXPECT_TRUE(topo::isConnected(topo));

  util::Rng treeRng(1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const routing::VerifyReport report = routing::verifyRouting(routing);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_GT(report.averagePathLength, 4.0);  // deep network, long paths
}

TEST(Scale, LargeNetworkSimulationStaysConsistent) {
  util::Rng rng(7);
  const topo::Topology topo =
      topo::randomIrregular(256, {.maxPorts = 8}, rng);
  util::Rng treeRng(8);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  sim::SimConfig config;
  config.packetLengthFlits = 32;
  config.warmupCycles = 500;
  config.measureCycles = 3000;
  const sim::UniformTraffic traffic(topo.nodeCount());
  const sim::RunStats stats =
      sim::simulate(routing.table(), traffic, 0.05, config);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_NEAR(stats.acceptedFlitsPerNodePerCycle, 0.05, 0.015);
  for (double util : stats.channelUtilization) EXPECT_LE(util, 1.0);
}

TEST(Integration, SerializedRoutingDrivesIdenticalSimulation) {
  util::Rng rng(13);
  const topo::Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(14);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM2Random, treeRng);
  const routing::Routing original = core::buildDownUp(topo, ct);

  std::stringstream buffer;
  routing::saveRouting(original, buffer);
  const routing::Routing restored = routing::loadRouting(topo, buffer);

  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 200;
  config.measureCycles = 3000;
  config.seed = 77;
  const sim::UniformTraffic traffic(topo.nodeCount());
  const sim::RunStats a = sim::simulate(original.table(), traffic, 0.1, config);
  const sim::RunStats b = sim::simulate(restored.table(), traffic, 0.1, config);
  EXPECT_EQ(a.packetsGenerated, b.packetsGenerated);
  EXPECT_EQ(a.flitsEjectedMeasured, b.flitsEjectedMeasured);
  EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
  EXPECT_EQ(a.channelUtilization, b.channelUtilization);
}

TEST(Integration, VirtualChannelsKeepEveryInvariant) {
  util::Rng rng(19);
  const topo::Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(20);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  for (std::uint32_t vcs : {1u, 2u, 3u, 4u}) {
    sim::SimConfig config;
    config.packetLengthFlits = 16;
    config.warmupCycles = 300;
    config.measureCycles = 4000;
    config.vcCount = vcs;
    config.deadlockThresholdCycles = 2000;
    const sim::UniformTraffic traffic(topo.nodeCount());
    const sim::RunStats stats =
        sim::simulate(routing.table(), traffic, 0.4, config);
    EXPECT_FALSE(stats.deadlocked) << vcs << " VCs";
    EXPECT_GT(stats.flitsEjectedMeasured, 0u) << vcs << " VCs";
    for (double util : stats.channelUtilization) {
      EXPECT_LE(util, 1.0 + 1e-12) << vcs << " VCs";
    }
  }
}

TEST(Integration, MisrouteModeRemainsLiveAndDeadlockFree) {
  // Non-minimal adaptive mode on the *repaired* rule: packets may wander
  // but the acyclic turn relation keeps the network deadlock-free and
  // every packet still arrives.
  util::Rng rng(23);
  const topo::Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(24);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM3LargestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.misrouteProbability = 0.4;
  config.deadlockThresholdCycles = 5000;
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, 0.1, config);
  for (int i = 0; i < 12000; ++i) net.step();
  EXPECT_FALSE(net.deadlocked());
  EXPECT_GT(net.packetsEjected(), 100u);
  // The vast majority of generated packets completed (liveness).
  EXPECT_GT(static_cast<double>(net.packetsEjected()),
            0.8 * static_cast<double>(net.packetsGenerated()) - 50.0);
}

}  // namespace
}  // namespace downup
