// The library-wide safety net: across a grid of random irregular networks,
// port counts, tree policies and routing algorithms, every routing the
// library can build must be deadlock-free (acyclic channel dependencies)
// and fully connected, with legal paths no shorter than graph distance.
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "routing/cdg.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"

namespace downup {
namespace {

struct SweepCase {
  topo::NodeId nodes;
  unsigned ports;
  std::uint64_t seed;
  tree::TreePolicy policy;
};

std::vector<SweepCase> makeCases() {
  std::vector<SweepCase> cases;
  const tree::TreePolicy policies[] = {tree::TreePolicy::kM1SmallestFirst,
                                       tree::TreePolicy::kM2Random,
                                       tree::TreePolicy::kM3LargestFirst};
  std::uint64_t seed = 1;
  for (topo::NodeId nodes : {10u, 24u, 48u, 96u}) {
    for (unsigned ports : {3u, 4u, 8u}) {
      for (tree::TreePolicy policy : policies) {
        cases.push_back({nodes, ports, seed++, policy});
      }
    }
  }
  return cases;
}

class RoutingPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RoutingPropertyTest, EveryAlgorithmIsSoundLiveAndAtLeastMinimal) {
  const auto& param = GetParam();
  util::Rng rng(param.seed * 7919 + 13);
  const topo::Topology topo =
      topo::randomIrregular(param.nodes, {.maxPorts = param.ports}, rng);
  util::Rng treeRng(param.seed * 104729 + 7);
  const tree::CoordinatedTree ct =
      tree::CoordinatedTree::build(topo, param.policy, treeRng);

  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    const routing::Routing routing = core::buildRouting(algorithm, topo, ct);
    const routing::VerifyReport report = routing::verifyRouting(routing);
    EXPECT_TRUE(report.deadlockFree)
        << core::toString(algorithm) << " on nodes=" << param.nodes
        << " ports=" << param.ports << " seed=" << param.seed << " policy="
        << tree::toString(param.policy) << ": " << report.describe();
    EXPECT_TRUE(report.connected)
        << core::toString(algorithm) << ": " << report.describe();
    EXPECT_GE(report.averageStretch, 1.0);
  }
}

TEST_P(RoutingPropertyTest, LegalDistanceNeverBeatsGraphDistance) {
  const auto& param = GetParam();
  util::Rng rng(param.seed * 7919 + 13);
  const topo::Topology topo =
      topo::randomIrregular(param.nodes, {.maxPorts = param.ports}, rng);
  util::Rng treeRng(param.seed * 104729 + 7);
  const tree::CoordinatedTree ct =
      tree::CoordinatedTree::build(topo, param.policy, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  for (topo::NodeId s = 0; s < topo.nodeCount(); ++s) {
    const auto graphDist = topo::bfsDistances(topo, s);
    for (topo::NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      EXPECT_GE(routing.table().distance(s, d), graphDist[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RoutingPropertyTest,
                         ::testing::ValuesIn(makeCases()));

struct RegularCase {
  const char* name;
  topo::Topology topology;
  tree::TreePolicy policy;
};

std::vector<RegularCase> makeRegularCases() {
  util::Rng rng(99);
  std::vector<RegularCase> cases;
  const tree::TreePolicy policies[] = {tree::TreePolicy::kM1SmallestFirst,
                                       tree::TreePolicy::kM3LargestFirst};
  for (tree::TreePolicy policy : policies) {
    cases.push_back({"mesh6x6", topo::mesh(6, 6), policy});
    cases.push_back({"torus5x5", topo::torus(5, 5), policy});
    cases.push_back({"hypercube5", topo::hypercube(5), policy});
    cases.push_back({"petersen", topo::petersen(), policy});
    cases.push_back({"dumbbell6", topo::dumbbell(6), policy});
    cases.push_back({"ring12", topo::ring(12), policy});
    cases.push_back({"star16", topo::star(16), policy});
    cases.push_back({"regular24x4", topo::randomRegular(24, 4, rng), policy});
  }
  return cases;
}

class RegularTopologyPropertyTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegularTopologyPropertyTest, EveryAlgorithmSoundAndLive) {
  static const std::vector<RegularCase> cases = makeRegularCases();
  const RegularCase& testCase = cases[GetParam()];
  util::Rng treeRng(GetParam() + 1);
  const tree::CoordinatedTree ct =
      tree::CoordinatedTree::build(testCase.topology, testCase.policy, treeRng);
  for (core::Algorithm algorithm : core::kAllAlgorithms) {
    const routing::Routing routing =
        core::buildRouting(algorithm, testCase.topology, ct);
    const routing::VerifyReport report = routing::verifyRouting(routing);
    EXPECT_TRUE(report.ok())
        << testCase.name << " / " << tree::toString(testCase.policy) << " / "
        << core::toString(algorithm) << ": " << report.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(RegularTopologies, RegularTopologyPropertyTest,
                         ::testing::Range<std::size_t>(0, 16));

TEST(RoutingProperty, PublishedRuleCyclicityIsCommonUnderM3) {
  // Quantify the DESIGN.md §4.4 finding: across random 4-port networks with
  // M3 trees, the unrepaired published rule regularly admits turn cycles
  // while the repaired builder never does.
  unsigned cyclic = 0;
  constexpr unsigned kSamples = 15;
  for (std::uint64_t seed = 1; seed <= kSamples; ++seed) {
    util::Rng rng(seed);
    const topo::Topology topo =
        topo::randomIrregular(48, {.maxPorts = 4}, rng);
    util::Rng treeRng(seed + 500);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM3LargestFirst, treeRng);
    routing::TurnPermissions raw(topo, routing::classifyDownUp(topo, ct),
                                 core::downUpTurnSet());
    if (!routing::checkChannelDependencies(raw).acyclic) ++cyclic;

    const routing::Routing repaired = core::buildDownUp(topo, ct);
    EXPECT_TRUE(
        routing::checkChannelDependencies(repaired.permissions()).acyclic);
  }
  // This is an empirical observation, not a theorem: record that we saw at
  // least one cyclic instance so regressions in the checker get noticed.
  EXPECT_GE(cyclic, 1u) << "expected the published rule to misbehave on at "
                           "least one of " << kSamples << " samples";
}

}  // namespace
}  // namespace downup
