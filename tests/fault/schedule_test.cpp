// FaultSchedule: builder ordering, flap expansion, the seeded random
// generator (determinism + partition avoidance) and validation errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fault/controller.hpp"
#include "fault/schedule.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::fault {
namespace {

topo::Topology ring(topo::NodeId n) {
  topo::Topology topo(n);
  for (topo::NodeId v = 0; v < n; ++v) topo.addLink(v, (v + 1) % n);
  return topo;
}

/// True when the subgraph over all nodes and the non-failed links is
/// connected (every node reachable from node 0).
bool aliveConnected(const topo::Topology& topo,
                    const std::vector<bool>& linkDead) {
  std::vector<bool> seen(topo.nodeCount(), false);
  std::vector<topo::NodeId> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const topo::NodeId v = stack.back();
    stack.pop_back();
    const auto channels = topo.outputChannels(v);
    const auto neighbors = topo.neighbors(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (linkDead[topo::Topology::linkOf(channels[i])]) continue;
      if (!seen[neighbors[i]]) {
        seen[neighbors[i]] = true;
        stack.push_back(neighbors[i]);
      }
    }
  }
  for (topo::NodeId v = 0; v < topo.nodeCount(); ++v) {
    if (!seen[v]) return false;
  }
  return true;
}

TEST(FaultScheduleTest, BuildersKeepEventsCycleSorted) {
  FaultSchedule schedule;
  schedule.linkDown(300, 2).nodeDown(100, 5).linkUp(200, 2);
  ASSERT_EQ(schedule.size(), 3u);
  const auto events = schedule.events();
  EXPECT_EQ(events[0], (FaultEvent{100, FaultKind::kNodeDown, 5}));
  EXPECT_EQ(events[1], (FaultEvent{200, FaultKind::kLinkUp, 2}));
  EXPECT_EQ(events[2], (FaultEvent{300, FaultKind::kLinkDown, 2}));
}

TEST(FaultScheduleTest, SameCycleEventsAreInsertionStable) {
  FaultSchedule schedule;
  schedule.linkDown(50, 1).nodeDown(50, 3).linkUp(50, 1).nodeUp(50, 3);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(events[1].kind, FaultKind::kNodeDown);
  EXPECT_EQ(events[2].kind, FaultKind::kLinkUp);
  EXPECT_EQ(events[3].kind, FaultKind::kNodeUp);
}

TEST(FaultScheduleTest, SameCycleUpInsertedFirstStillAppliesDownBeforeUp) {
  // Regression (flap bursts): same-cycle ordering must be down-before-up
  // regardless of insertion order, so a one-cycle flap deterministically
  // nets out alive instead of depending on builder call order.
  FaultSchedule schedule;
  schedule.linkUp(50, 1).nodeUp(50, 3).linkDown(50, 1).nodeDown(50, 3);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], (FaultEvent{50, FaultKind::kLinkDown, 1}));
  EXPECT_EQ(events[1], (FaultEvent{50, FaultKind::kNodeDown, 3}));
  EXPECT_EQ(events[2], (FaultEvent{50, FaultKind::kLinkUp, 1}));
  EXPECT_EQ(events[3], (FaultEvent{50, FaultKind::kNodeUp, 3}));
}

TEST(FaultScheduleTest, SameCycleFlapBurstKeepsAllDownsBeforeAllUps) {
  FaultSchedule schedule;
  // Three links flapping at one cycle, ups interleaved before downs.
  schedule.linkUp(10, 2).linkDown(10, 0).linkUp(10, 0).linkDown(10, 1);
  schedule.linkUp(10, 1).linkDown(10, 2);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 6u);
  // Downs first (insertion-stable within the class: 0, 1, 2), then ups
  // (insertion order 2, 0, 1).
  EXPECT_EQ(events[0], (FaultEvent{10, FaultKind::kLinkDown, 0}));
  EXPECT_EQ(events[1], (FaultEvent{10, FaultKind::kLinkDown, 1}));
  EXPECT_EQ(events[2], (FaultEvent{10, FaultKind::kLinkDown, 2}));
  EXPECT_EQ(events[3], (FaultEvent{10, FaultKind::kLinkUp, 2}));
  EXPECT_EQ(events[4], (FaultEvent{10, FaultKind::kLinkUp, 0}));
  EXPECT_EQ(events[5], (FaultEvent{10, FaultKind::kLinkUp, 1}));
}

TEST(FaultScheduleTest, SameCycleFlapNetsAliveInController) {
  const topo::Topology topo = ring(8);
  FaultSchedule schedule;
  schedule.linkUp(100, 2).linkDown(100, 2);  // reordered to down-then-up
  FaultController controller(topo, schedule);
  const FaultController::Applied applied = controller.applyEventsAt(100);
  // The link went down mid-batch (worms on it must still be dropped) but
  // nets out alive, and no fault remains outstanding.
  ASSERT_EQ(applied.newlyDeadLinks.size(), 1u);
  EXPECT_EQ(applied.newlyDeadLinks[0], 2u);
  EXPECT_TRUE(applied.topologyChanged);
  EXPECT_TRUE(controller.linkAlive(2));
  EXPECT_FALSE(controller.anyFault());
}

TEST(FaultScheduleTest, LinkFlapExpandsToDownThenUp) {
  FaultSchedule schedule;
  schedule.linkFlap(1000, 7, 40);
  const auto events = schedule.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (FaultEvent{1000, FaultKind::kLinkDown, 7}));
  EXPECT_EQ(events[1], (FaultEvent{1040, FaultKind::kLinkUp, 7}));
}

TEST(FaultScheduleTest, EmptyScheduleReportsEmpty) {
  const FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.size(), 0u);
  EXPECT_TRUE(schedule.events().empty());
}

TEST(FaultScheduleTest, RandomLinkFailuresIsDeterministicPerSeed) {
  util::Rng topoRng(2024);
  const topo::Topology topo = topo::randomIrregular(24, {.maxPorts = 4},
                                                    topoRng);
  const FaultSchedule a =
      FaultSchedule::randomLinkFailures(topo, 4, 1000, 500, 99);
  const FaultSchedule b =
      FaultSchedule::randomLinkFailures(topo, 4, 1000, 500, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
  const FaultSchedule c =
      FaultSchedule::randomLinkFailures(topo, 4, 1000, 500, 100);
  bool anyDifferent = c.size() != a.size();
  for (std::size_t i = 0; !anyDifferent && i < a.size(); ++i) {
    anyDifferent = !(a.events()[i] == c.events()[i]);
  }
  EXPECT_TRUE(anyDifferent) << "different seeds produced identical schedules";
}

TEST(FaultScheduleTest, RandomLinkFailuresScheduleShape) {
  util::Rng topoRng(2024);
  const topo::Topology topo = topo::randomIrregular(24, {.maxPorts = 4},
                                                    topoRng);
  const FaultSchedule schedule =
      FaultSchedule::randomLinkFailures(topo, 3, 1000, 500, 42);
  ASSERT_EQ(schedule.size(), 3u);
  std::vector<bool> failed(topo.linkCount(), false);
  std::uint64_t cycle = 1000;
  for (const FaultEvent& event : schedule.events()) {
    EXPECT_EQ(event.kind, FaultKind::kLinkDown);
    EXPECT_EQ(event.cycle, cycle);
    EXPECT_LT(event.id, topo.linkCount());
    EXPECT_FALSE(failed[event.id]) << "link failed twice";
    failed[event.id] = true;
    cycle += 500;
  }
}

TEST(FaultScheduleTest, RandomLinkFailuresAvoidsPartition) {
  // A ring has exactly one spare path: failing any two links partitions it,
  // so the partition-avoiding generator must stop after one failure.
  const topo::Topology topo = ring(8);
  const FaultSchedule schedule =
      FaultSchedule::randomLinkFailures(topo, 5, 100, 100, 7);
  EXPECT_EQ(schedule.size(), 1u);

  // On a denser network every prefix of the failure sequence must leave the
  // alive subgraph connected.
  util::Rng topoRng(2024);
  const topo::Topology dense = topo::randomIrregular(24, {.maxPorts = 4},
                                                     topoRng);
  const FaultSchedule denseSchedule =
      FaultSchedule::randomLinkFailures(dense, 5, 100, 100, 11);
  std::vector<bool> dead(dense.linkCount(), false);
  for (const FaultEvent& event : denseSchedule.events()) {
    dead[event.id] = true;
    EXPECT_TRUE(aliveConnected(dense, dead));
  }
}

TEST(FaultScheduleTest, RandomLinkFailuresCanPartitionWhenAllowed) {
  const topo::Topology topo = ring(8);
  const FaultSchedule schedule = FaultSchedule::randomLinkFailures(
      topo, 5, 100, 100, 7, /*avoidPartition=*/false);
  EXPECT_EQ(schedule.size(), 5u);
}

TEST(FaultScheduleTest, ValidateRejectsOutOfRangeIds) {
  const topo::Topology topo = ring(6);  // 6 links, 6 nodes
  FaultSchedule badLink;
  badLink.linkDown(10, topo.linkCount());
  EXPECT_THROW(badLink.validate(topo), std::invalid_argument);
  FaultSchedule badNode;
  badNode.nodeDown(10, topo.nodeCount());
  EXPECT_THROW(badNode.validate(topo), std::invalid_argument);
  FaultSchedule good;
  good.linkFlap(10, topo.linkCount() - 1, 5).nodeDown(20, 0);
  EXPECT_NO_THROW(good.validate(topo));
}

}  // namespace
}  // namespace downup::fault
