// Reconfigurator: rebuilding the coordinated tree + DOWN/UP rule on degraded
// topologies — connectivity and deadlock freedom after single link removals,
// partitions and node deaths, and host-numbering equivalence with a routing
// built directly on the degraded graph.
#include <gtest/gtest.h>

#include <vector>

#include "core/downup_routing.hpp"
#include "fault/reconfigure.hpp"
#include "routing/routing_table.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"

namespace downup::fault {
namespace {

using routing::kNoPath;

topo::Topology makeSan() {
  util::Rng rng(2024);
  return topo::randomIrregular(24, {.maxPorts = 4}, rng);
}

/// Two triangles {0,1,2} and {3,4,5} joined by the bridge link 2-3.
/// Links in insertion order: 0:(0,1) 1:(1,2) 2:(0,2) 3:(3,4) 4:(4,5)
/// 5:(3,5) 6:(2,3).
topo::Topology twoTriangles() {
  topo::Topology topo(6);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  topo.addLink(0, 2);
  topo.addLink(3, 4);
  topo.addLink(4, 5);
  topo.addLink(3, 5);
  topo.addLink(2, 3);
  return topo;
}

std::vector<std::uint8_t> allAlive(std::size_t count) {
  return std::vector<std::uint8_t>(count, 1);
}

TEST(ReconfiguratorTest, HealthyRebuildMatchesDirectBuild) {
  const topo::Topology topo = makeSan();
  const Reconfigurator reconf(topo);
  const ReconfigOutcome out =
      reconf.rebuild(allAlive(topo.linkCount()), allAlive(topo.nodeCount()));

  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.components, 1u);
  EXPECT_EQ(out.aliveNodes, topo.nodeCount());
  EXPECT_EQ(out.aliveLinks, topo.linkCount());
  EXPECT_EQ(out.unreachablePairs, 0u);
  EXPECT_GT(out.averagePathLength, 0.0);

  // With everything alive the compacted sub-topology is the host topology,
  // so the merged table must match a direct M1 build channel for channel.
  util::Rng treeRng(0);
  const auto ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing direct = core::buildDownUp(topo, ct);
  for (topo::NodeId dst = 0; dst < topo.nodeCount(); ++dst) {
    for (topo::ChannelId c = 0; c < topo.channelCount(); ++c) {
      EXPECT_EQ(out.table->channelSteps(dst, c),
                direct.table().channelSteps(dst, c));
    }
  }
}

TEST(ReconfiguratorTest, EverySingleLinkFailureRebuildsSafely) {
  const topo::Topology topo = makeSan();
  const Reconfigurator reconf(topo);
  const auto nodesUp = allAlive(topo.nodeCount());
  for (topo::LinkId dead = 0; dead < topo.linkCount(); ++dead) {
    auto linksUp = allAlive(topo.linkCount());
    linksUp[dead] = 0;
    const ReconfigOutcome out = reconf.rebuild(linksUp, nodesUp);

    EXPECT_TRUE(out.deadlockFree) << "link " << dead;
    EXPECT_TRUE(out.componentsConnected) << "link " << dead;
    EXPECT_EQ(out.aliveLinks, topo.linkCount() - 1);
    if (out.components == 1) {
      EXPECT_EQ(out.unreachablePairs, 0u) << "link " << dead;
    }
    // The dead link's channels must never be offered: kNoPath steps for
    // every destination and absent from every first-hop candidate row.
    for (topo::NodeId dst = 0; dst < topo.nodeCount(); ++dst) {
      EXPECT_EQ(out.table->channelSteps(dst, 2 * dead), kNoPath);
      EXPECT_EQ(out.table->channelSteps(dst, 2 * dead + 1), kNoPath);
      for (topo::NodeId src = 0; src < topo.nodeCount(); ++src) {
        if (src == dst) continue;
        for (topo::ChannelId c : out.table->firstChannels(src, dst)) {
          EXPECT_NE(topo::Topology::linkOf(c), dead);
        }
      }
    }
  }
}

TEST(ReconfiguratorTest, DegradedRebuildMatchesDirectDegradedBuild) {
  const topo::Topology topo = makeSan();
  const Reconfigurator reconf(topo);

  // Find a link whose removal keeps one component, fail it via the
  // reconfigurator, and cross-check against a routing built directly on a
  // hand-made degraded topology (same node ids, alive links in ascending
  // host order — the reconfigurator's construction order).
  for (topo::LinkId dead = 0; dead < topo.linkCount(); ++dead) {
    auto linksUp = allAlive(topo.linkCount());
    linksUp[dead] = 0;
    const ReconfigOutcome out =
        reconf.rebuild(linksUp, allAlive(topo.nodeCount()));
    if (out.components != 1) continue;

    topo::Topology degraded(topo.nodeCount());
    std::vector<topo::LinkId> subToHost;
    for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
      if (l == dead) continue;
      const auto [a, b] = topo.linkEnds(l);
      degraded.addLink(a, b);
      subToHost.push_back(l);
    }
    util::Rng treeRng(0);
    const auto ct = tree::CoordinatedTree::build(
        degraded, tree::TreePolicy::kM1SmallestFirst, treeRng);
    const routing::Routing direct = core::buildDownUp(degraded, ct);

    for (topo::NodeId src = 0; src < topo.nodeCount(); ++src) {
      for (topo::NodeId dst = 0; dst < topo.nodeCount(); ++dst) {
        EXPECT_EQ(out.table->distance(src, dst),
                  direct.table().distance(src, dst));
      }
    }
    for (topo::NodeId dst = 0; dst < topo.nodeCount(); ++dst) {
      for (topo::ChannelId sub = 0; sub < degraded.channelCount(); ++sub) {
        const topo::ChannelId host = 2 * subToHost[sub >> 1] + (sub & 1);
        EXPECT_EQ(out.table->channelSteps(dst, host),
                  direct.table().channelSteps(dst, sub));
      }
    }
    return;  // one non-bridge link exercised is enough
  }
  FAIL() << "every link of the 24-switch SAN is a bridge?";
}

TEST(ReconfiguratorTest, BridgeFailureSplitsIntoRoutedComponents) {
  const topo::Topology topo = twoTriangles();
  const Reconfigurator reconf(topo);
  auto linksUp = allAlive(topo.linkCount());
  linksUp[6] = 0;  // the 2-3 bridge
  const ReconfigOutcome out = reconf.rebuild(linksUp, allAlive(6));

  EXPECT_TRUE(out.ok());  // each component is connected and deadlock-free
  EXPECT_EQ(out.components, 2u);
  EXPECT_EQ(out.aliveNodes, 6u);
  EXPECT_EQ(out.aliveLinks, 6u);
  // All 3*3 ordered pairs across the cut, both directions.
  EXPECT_EQ(out.unreachablePairs, 18u);
  for (topo::NodeId src = 0; src < 6; ++src) {
    for (topo::NodeId dst = 0; dst < 6; ++dst) {
      if (src == dst) continue;
      const bool sameSide = (src < 3) == (dst < 3);
      EXPECT_EQ(out.table->distance(src, dst) != kNoPath, sameSide)
          << src << " -> " << dst;
    }
  }
}

TEST(ReconfiguratorTest, NodeDeathKillsIncidentLinksAndItsRoutes) {
  const topo::Topology topo = twoTriangles();
  const Reconfigurator reconf(topo);
  auto nodesUp = allAlive(topo.nodeCount());
  nodesUp[3] = 0;  // takes links 3-4, 3-5 and the bridge 2-3 with it
  const ReconfigOutcome out = reconf.rebuild(allAlive(topo.linkCount()),
                                             nodesUp);

  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.components, 2u);  // {0,1,2} and {4,5}
  EXPECT_EQ(out.aliveNodes, 5u);
  EXPECT_EQ(out.aliveLinks, 4u);
  // 5*4 ordered alive pairs minus 3*2 within the triangle and 2*1 within
  // the pair.
  EXPECT_EQ(out.unreachablePairs, 12u);
  for (topo::NodeId v = 0; v < 6; ++v) {
    if (v == 3) continue;
    EXPECT_EQ(out.table->distance(v, 3), kNoPath);
    EXPECT_EQ(out.table->distance(3, v), kNoPath);
  }
  EXPECT_NE(out.table->distance(4, 5), kNoPath);
  EXPECT_NE(out.table->distance(0, 2), kNoPath);
}

TEST(ReconfiguratorTest, IsolatedSurvivorCountsAsComponent) {
  // Killing nodes 4 and 5 leaves node 3 alive but linkless: a singleton
  // component with no routing, unreachable from the triangle.
  const topo::Topology topo = twoTriangles();
  const Reconfigurator reconf(topo);
  auto nodesUp = allAlive(topo.nodeCount());
  nodesUp[4] = 0;
  nodesUp[5] = 0;
  auto linksUp = allAlive(topo.linkCount());
  linksUp[6] = 0;  // bridge also down: node 3 fully cut off
  const ReconfigOutcome out = reconf.rebuild(linksUp, nodesUp);

  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.components, 2u);  // {0,1,2} and the singleton {3}
  EXPECT_EQ(out.aliveNodes, 4u);
  EXPECT_EQ(out.aliveLinks, 3u);
  EXPECT_EQ(out.unreachablePairs, 6u);  // 3 triangle nodes x {3}, both ways
  for (topo::NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(out.table->distance(v, 3), kNoPath);
    EXPECT_EQ(out.table->distance(3, v), kNoPath);
  }
}

}  // namespace
}  // namespace downup::fault
