// Incremental reconfiguration: Reconfigurator::rebuildIncremental keeps the
// previous epoch's turn rule and rebuilds only the destinations a failure
// can affect.  Contract under test:
//
//   * the incremental table is bit-for-bit identical to a full masked
//     RoutingTable::build of the inherited rule, at any thread count, for
//     every single-link failure and across accumulated multi-link failures;
//   * a revived resource forces the full-rebuild path (incremental never
//     handles topology growth);
//   * when the inherited rule cannot serve every surviving pair (e.g. a
//     tree link whose loss severs the only legal detour) the incremental
//     path detects it and falls back to the full rebuild, so every outcome
//     is ok() regardless of which path ran;
//   * in the engine, reconfigIncremental = true shortens the frozen window
//     (reconfigCyclesTotal) for incremental-served failures and leaves
//     results verified and fully drained.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/reconfigure.hpp"
#include "fault/schedule.hpp"
#include "routing/routing_table.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace downup::fault {
namespace {

topo::Topology makeSan(topo::NodeId switches, std::uint64_t seed) {
  util::Rng rng(seed);
  return topo::randomIrregular(switches, {.maxPorts = 4}, rng);
}

std::vector<std::uint8_t> allAlive(std::size_t count) {
  return std::vector<std::uint8_t>(count, 1);
}

std::vector<std::uint64_t> channelMask(
    const topo::Topology& topo, const std::vector<std::uint8_t>& linksUp) {
  std::vector<std::uint64_t> alive((topo.channelCount() + 63) / 64, 0);
  for (topo::ChannelId c = 0; c < topo.channelCount(); ++c) {
    if (linksUp[topo::Topology::linkOf(c)] != 0) {
      alive[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
  }
  return alive;
}

TEST(IncrementalReconfigTest, EverySingleLinkFailureMatchesMaskedFullBuild) {
  for (const std::uint64_t seed : {2024u, 2025u, 2026u}) {
    const topo::Topology topo = makeSan(24, seed);
    const Reconfigurator reconf(topo);
    const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());
    const ReconfigOutcome healthy =
        reconf.rebuild(allAlive(topo.linkCount()), nodesUp);
    ASSERT_TRUE(healthy.ok());

    unsigned servedIncrementally = 0;
    for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " link " << l);
      std::vector<std::uint8_t> linksUp = allAlive(topo.linkCount());
      linksUp[l] = 0;
      const ReconfigOutcome out =
          reconf.rebuildIncremental(*healthy.table, linksUp, nodesUp);
      ASSERT_TRUE(out.ok());
      if (!out.incremental) continue;  // fallback ran the full path
      ++servedIncrementally;
      // The incremental epoch must equal the masked full build of the
      // INHERITED rule exactly (same steps, same candidate rows).
      const routing::RoutingTable masked = routing::RoutingTable::build(
          *out.perms, nullptr, channelMask(topo, linksUp));
      EXPECT_TRUE(out.table->identicalTo(masked));
      EXPECT_EQ(out.rebuiltDestinations,
                healthy.table->dirtyDestinationCount(
                    channelMask(topo, linksUp)));
    }
    // The incremental path must actually fire on a healthy SAN — if every
    // link fell back, the dirty-set machinery is broken.
    EXPECT_GT(servedIncrementally, 0u);
  }
}

TEST(IncrementalReconfigTest, AccumulatedFailuresAndThreadCountDeterminism) {
  const topo::Topology topo = makeSan(32, 99);
  util::ThreadPool four(4);
  const Reconfigurator serial(topo);
  const Reconfigurator pooled(topo, &four);
  const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());
  std::vector<std::uint8_t> linksUp = allAlive(topo.linkCount());

  ReconfigOutcome prev = serial.rebuild(linksUp, nodesUp);
  ASSERT_TRUE(prev.ok());

  // Kill links one at a time, feeding each incremental epoch the previous
  // one — the masks only ever clear bits, so the precondition holds.
  unsigned incrementalEpochs = 0;
  for (const topo::LinkId l : {0u, 7u, 13u}) {
    linksUp[l] = 0;
    ReconfigOutcome serialOut =
        serial.rebuildIncremental(*prev.table, linksUp, nodesUp);
    ReconfigOutcome pooledOut =
        pooled.rebuildIncremental(*prev.table, linksUp, nodesUp);
    ASSERT_TRUE(serialOut.ok());
    ASSERT_TRUE(pooledOut.ok());
    EXPECT_EQ(serialOut.incremental, pooledOut.incremental);
    EXPECT_TRUE(serialOut.table->identicalTo(*pooledOut.table));
    EXPECT_EQ(serialOut.table->fingerprint(), pooledOut.table->fingerprint());
    incrementalEpochs += serialOut.incremental ? 1 : 0;
    prev = std::move(serialOut);
  }
  EXPECT_GE(incrementalEpochs, 1u);
}

TEST(IncrementalReconfigTest, RevivalForcesFullRebuild) {
  const topo::Topology topo = makeSan(24, 2024);
  const Reconfigurator reconf(topo);
  const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());

  // Previous epoch: link 0 dead.  New masks: link 0 alive again (and link 1
  // dead, so the masks are not trivially healthy).
  std::vector<std::uint8_t> degraded = allAlive(topo.linkCount());
  degraded[0] = 0;
  const ReconfigOutcome prev = reconf.rebuild(degraded, nodesUp);
  ASSERT_TRUE(prev.ok());

  std::vector<std::uint8_t> revived = allAlive(topo.linkCount());
  revived[1] = 0;
  const ReconfigOutcome out =
      reconf.rebuildIncremental(*prev.table, revived, nodesUp);
  EXPECT_FALSE(out.incremental);
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(out.rebuiltDestinations, out.aliveNodes);
}

TEST(IncrementalReconfigTest, DirtyFractionBoundsAndFallbackConsistency) {
  const topo::Topology topo = makeSan(24, 2024);
  const Reconfigurator reconf(topo);
  const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());
  const ReconfigOutcome healthy =
      reconf.rebuild(allAlive(topo.linkCount()), nodesUp);
  ASSERT_TRUE(healthy.ok());

  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    std::vector<std::uint8_t> linksUp = allAlive(topo.linkCount());
    linksUp[l] = 0;
    const double fraction =
        reconf.incrementalDirtyFraction(*healthy.table, linksUp, nodesUp);
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
  // A revival reports the full fraction (incremental cannot apply).
  std::vector<std::uint8_t> degraded = allAlive(topo.linkCount());
  degraded[2] = 0;
  const ReconfigOutcome prev = reconf.rebuild(degraded, nodesUp);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(reconf.incrementalDirtyFraction(
                *prev.table, allAlive(topo.linkCount()), nodesUp),
            1.0);
}

// Engine integration: the same fault scenario with and without
// reconfigIncremental.  The incremental run must freeze injection for
// FEWER total cycles (the window scales with the dirty fraction), complete
// at least one incremental swap, stay verified, and drain completely.
TEST(IncrementalReconfigTest, EngineShortensReconfigWindow) {
  const topo::Topology topo = makeSan(32, 7);
  util::Rng treeRng(8);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const sim::UniformTraffic traffic(topo.nodeCount());

  // A link failure the incremental path can serve: probe offline first so
  // the engine assertion below is about window length, not applicability.
  const Reconfigurator reconf(topo);
  const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());
  const ReconfigOutcome healthy =
      reconf.rebuild(allAlive(topo.linkCount()), nodesUp);
  ASSERT_TRUE(healthy.ok());
  topo::LinkId victim = topo.linkCount();
  for (topo::LinkId l = 0; l < topo.linkCount(); ++l) {
    std::vector<std::uint8_t> linksUp = allAlive(topo.linkCount());
    linksUp[l] = 0;
    const ReconfigOutcome probe =
        reconf.rebuildIncremental(*healthy.table, linksUp, nodesUp);
    if (probe.ok() && probe.incremental &&
        probe.unreachablePairs == 0) {
      victim = l;
      break;
    }
  }
  ASSERT_LT(victim, topo.linkCount()) << "no incremental-served link found";

  FaultSchedule schedule;
  schedule.linkDown(3000, victim);

  sim::SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 1000;
  config.measureCycles = 8000;
  config.reconfigLatencyCycles = 400;
  config.faultSchedule = &schedule;
  config.seed = 11;

  sim::RunStats fullStats;
  {
    sim::WormholeNetwork net(routing.table(), traffic, 0.05, config);
    net.run();
    ASSERT_TRUE(net.drainRemaining(100000));
    fullStats = net.collectStats();
  }
  sim::SimConfig incrConfig = config;
  incrConfig.reconfigIncremental = true;
  sim::RunStats incrStats;
  {
    sim::WormholeNetwork net(routing.table(), traffic, 0.05, incrConfig);
    net.run();
    ASSERT_TRUE(net.drainRemaining(100000));
    incrStats = net.collectStats();
  }

  EXPECT_FALSE(fullStats.deadlocked);
  EXPECT_FALSE(incrStats.deadlocked);
  EXPECT_TRUE(fullStats.reconfigRoutingVerified);
  EXPECT_TRUE(incrStats.reconfigRoutingVerified);
  EXPECT_EQ(fullStats.reconfigurations, 1u);
  EXPECT_EQ(incrStats.reconfigurations, 1u);
  EXPECT_EQ(fullStats.reconfigIncrementalSwaps, 0u);
  EXPECT_EQ(incrStats.reconfigIncrementalSwaps, 1u);
  // The swap cycle itself counts as open, hence >= rather than ==.
  EXPECT_GE(fullStats.reconfigCyclesTotal, config.reconfigLatencyCycles);
  EXPECT_LT(incrStats.reconfigCyclesTotal, fullStats.reconfigCyclesTotal);
  EXPECT_LT(incrStats.reconfigDestinationsRebuilt,
            fullStats.reconfigDestinationsRebuilt);
}

}  // namespace
}  // namespace downup::fault
