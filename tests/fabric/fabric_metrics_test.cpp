// FabricMetrics and control-plane tracing on the fabric service: histogram
// accuracy, driven-mode span tiling (the stage spans account for the
// rebuild wall time), the epoch-lifecycle counters, and the coalescing
// ledger + flight-recorder sequence under a live service with concurrent
// readers (the CI thread-sanitizer target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fabric/manager.hpp"
#include "fabric/metrics.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::fabric {
namespace {

topo::Topology makeSan(topo::NodeId switches, std::uint64_t seed) {
  util::Rng rng(seed);
  return topo::randomIrregular(switches, {.maxPorts = 4}, rng);
}

std::vector<std::uint8_t> allAlive(std::size_t count) {
  return std::vector<std::uint8_t>(count, 1);
}

template <class Pred>
bool waitUntil(Pred pred) {
  for (int i = 0; i < 5000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

struct Fixture {
  explicit Fixture(topo::NodeId switches = 24, std::uint64_t seed = 11)
      : topo(makeSan(switches, seed)),
        reconf(topo),
        baseline(reconf.rebuild(allAlive(topo.linkCount()),
                                allAlive(topo.nodeCount()))) {}

  topo::Topology topo;
  fault::Reconfigurator reconf;
  fault::ReconfigOutcome baseline;
};

TEST(LatencyHistogramTest, CountsExactlyAndInterpolatesQuantiles) {
  LatencyHistogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
    sum += v;
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.maxNs, 1000u);
  EXPECT_DOUBLE_EQ(s.meanNs, static_cast<double>(sum) / 1000.0);
  // 4 sub-buckets per octave -> quantiles land within ~12.5% of the truth.
  EXPECT_GT(s.p50Ns, 500.0 * 0.8);
  EXPECT_LT(s.p50Ns, 500.0 * 1.2);
  EXPECT_GT(s.p99Ns, 990.0 * 0.8);
  EXPECT_LE(s.p99Ns, 1000.0);  // clamped to the observed max
  EXPECT_GE(s.p99Ns, s.p90Ns);
  EXPECT_GE(s.p90Ns, s.p50Ns);
}

TEST(LatencyHistogramTest, EmptyHistogramSnapshotsToZeros) {
  const LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.meanNs, 0.0);
  EXPECT_DOUBLE_EQ(s.p99Ns, 0.0);
  EXPECT_EQ(s.maxNs, 0u);
}

TEST(FabricMetricsTest, WriteJsonEmitsEveryCounter) {
  FabricMetrics m;
  m.acquireNs.record(120);
  m.publishes.store(3);
  m.flapsCancelled.store(1);
  std::ostringstream out;
  m.writeJson(out);
  const std::string text = out.str();
  for (const char* key :
       {"\"acquire\"", "\"rebuild\"", "\"snapshotLifetime\"",
        "\"publishes\":3", "\"reclaims\"", "\"retireDepthMax\"",
        "\"readersRegistered\"", "\"readerPinnedMax\"",
        "\"transitionsSeen\"", "\"windowsOpened\"", "\"windowExtensions\"",
        "\"rebuildsRun\"", "\"rebuildsIncremental\"",
        "\"flapsCancelled\":1", "\"dirtyDestinationsTotal\"",
        "\"dirtyDestinationsMax\"", "\"p50Ns\"", "\"p99Ns\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST(FabricSpanTest, DrivenRebuildStagesTileTheDecisionWallTime) {
  // One driven full rebuild with spans attached: a single `rebuild` root
  // whose direct children (dequeue, construction stages, publish) account
  // for at least 95% of the root's wall time — nothing substantial happens
  // untraced.  64 switches so stage work dwarfs the inter-span bookkeeping.
  Fixture fx(/*switches=*/64, /*seed=*/3);
  util::SpanRecorder spans;
  FabricManager::Options options;
  options.spans = &spans;
  FabricManager fm(fx.topo, *fx.baseline.table, options);

  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[2] = 0;
  ASSERT_TRUE(fm.publishFromMasks(linksUp, nodesUp, /*incremental=*/false).ok);

  const auto all = spans.snapshot();
  ASSERT_FALSE(all.empty());
  ASSERT_STREQ(all[0].name, "rebuild");
  ASSERT_EQ(all[0].parent, util::SpanRecorder::kNoParent);
  ASSERT_GT(all[0].durationNs(), 0u);

  std::uint64_t childSum = 0;
  std::vector<std::string> childNames;
  for (const auto& s : all) {
    ASSERT_GT(s.endNs, 0u) << s.name << " left open";
    if (s.parent == 0u) {
      childSum += s.durationNs();
      childNames.emplace_back(s.name);
      EXPECT_EQ(s.depth, 1);
      EXPECT_GE(s.startNs, all[0].startNs);
      EXPECT_LE(s.endNs, all[0].endNs);
    }
  }
  for (const char* stage : {"event_dequeue", "partition", "subtopo", "tree",
                            "classify", "repair", "release", "table_build",
                            "verify", "merge", "publish"}) {
    EXPECT_NE(std::find(childNames.begin(), childNames.end(), stage),
              childNames.end())
        << "missing stage span: " << stage;
  }
  const double coverage = static_cast<double>(childSum) /
                          static_cast<double>(all[0].durationNs());
  EXPECT_GT(coverage, 0.95) << "stage spans cover too little of the rebuild";
  EXPECT_LT(coverage, 1.005) << "children exceed their parent";

  // table_build nests the bfs + candidate_fill leaves.
  bool sawBfs = false;
  bool sawFill = false;
  for (const auto& s : all) {
    if (std::strcmp(s.name, "bfs") == 0) {
      sawBfs = true;
      EXPECT_STREQ(all[s.parent].name, "table_build");
    }
    if (std::strcmp(s.name, "candidate_fill") == 0) {
      sawFill = true;
      EXPECT_STREQ(all[s.parent].name, "table_build");
    }
  }
  EXPECT_TRUE(sawBfs);
  EXPECT_TRUE(sawFill);
}

TEST(FabricMetricsTest, DrivenPublishesStampLifetimesAndRetireDepth) {
  Fixture fx;
  FabricMetrics metrics;
  FabricManager::Options options;
  options.metrics = &metrics;
  FabricManager fm(fx.topo, *fx.baseline.table, options);
  Reader reader = fm.makeReader();

  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  // Three publishes with no reader pinned: every retired epoch reclaims
  // inside the publish path, so lifetimes get recorded (the baseline epoch
  // predates the metrics attach and is skipped).
  for (topo::LinkId l = 0; l < 3; ++l) {
    linksUp[l] = 0;
    fm.publishFromMasks(linksUp, nodesUp, /*incremental=*/true);
  }
  { (void)fm.acquire(reader); }

  EXPECT_EQ(metrics.publishes.load(), 3u);
  EXPECT_EQ(metrics.rebuildsRun.load(), 3u);
  EXPECT_EQ(metrics.rebuildNs.count(), 3u);
  EXPECT_GE(metrics.retireDepthMax.load(), 1u);
  EXPECT_GE(metrics.reclaims.load(), 1u);
  EXPECT_GE(metrics.snapshotLifetimeNs.count(), 1u);
  EXPECT_EQ(metrics.readersRegistered.load(), 1u);
  EXPECT_EQ(metrics.acquireNs.count(), 1u);
  EXPECT_GT(metrics.dirtyDestinationsTotal.load(), 0u);
  EXPECT_GE(metrics.dirtyDestinationsMax.load(), 1u);
}

TEST(FabricMetricsTest, ServiceUnderConcurrentReadersKeepsTheLedger) {
  // The TSan workhorse: a live service thread rebuilding under churn while
  // reader threads hammer the lock-free pin path, all hooks attached.
  Fixture fx;
  FabricMetrics metrics;
  util::SpanRecorder spans;
  FabricManager::Options options;
  options.metrics = &metrics;
  options.spans = &spans;
  options.coalesceWindowMicros = 50'000;  // roomy: flaps land in-window
  FabricManager fm(fx.topo, *fx.baseline.table, options);

  constexpr int kReaders = 3;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&fm, &fx, &stop, r] {
      Reader reader = fm.makeReader();
      util::Rng rng(100 + static_cast<std::uint64_t>(r));
      std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_acquire)) {
        PinnedSnapshot pin = fm.acquire(reader);
        const auto nodes = fx.topo.nodeCount();
        for (int i = 0; i < 64; ++i) {
          const auto src = static_cast<topo::NodeId>(rng.below(nodes));
          auto dst = static_cast<topo::NodeId>(rng.below(nodes));
          if (dst == src) dst = (dst + 1) % nodes;
          sink ^= pin.table().firstChannels(src, dst).size();
        }
      }
      (void)sink;
    });
  }

  fm.startService();
  // Burst 1: a real failure -> one rebuild.  Burst 2: recovery -> another.
  // Burst 3: down+up of one link inside one window -> cancelled flap.
  fm.onLinkStateChanged(1, 2, false);
  ASSERT_TRUE(waitUntil([&] { return fm.rebuilds() == 1; }));
  fm.onLinkStateChanged(2, 2, true);
  ASSERT_TRUE(waitUntil([&] { return fm.rebuilds() == 2; }));
  fm.onLinkStateChanged(3, 3, false);
  fm.onLinkStateChanged(3, 3, true);
  ASSERT_TRUE(waitUntil([&] { return fm.rebuildsSkipped() == 1; }));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  fm.stopService();
  ASSERT_TRUE(waitUntil([&] { return fm.tryReclaim(), fm.retiredCount() == 0; }));

  // Coalescing ledger mirrors the manager's own counters.
  EXPECT_EQ(metrics.transitionsSeen.load(), 4u);
  EXPECT_EQ(metrics.windowsOpened.load(), 3u);
  EXPECT_EQ(metrics.rebuildsRun.load(), 2u);
  EXPECT_EQ(metrics.flapsCancelled.load(), 1u);
  EXPECT_EQ(metrics.publishes.load(), 2u);
  EXPECT_EQ(metrics.rebuildNs.count(), 2u);
  EXPECT_EQ(metrics.readersRegistered.load(),
            static_cast<std::uint64_t>(kReaders));
  EXPECT_GT(metrics.acquireNs.count(), 0u);
  EXPECT_GE(metrics.snapshotLifetimeNs.count(), 1u);
  EXPECT_TRUE(fm.allPublishedOk());

  // The flight recorder holds the matching event sequence.
  std::vector<obs::FabricEvent> events;
  fm.flightRecorder().dump(events);
  std::size_t posted = 0, opened = 0, started = 0, finished = 0, published = 0,
              skipped = 0, reclaimed = 0;
  std::uint64_t lastStartedSeq = 0;
  for (const auto& e : events) {
    switch (e.kind) {
      case obs::FabricEventKind::kTransitionPosted: ++posted; break;
      case obs::FabricEventKind::kWindowOpened: ++opened; break;
      case obs::FabricEventKind::kRebuildStarted:
        ++started;
        lastStartedSeq = e.seq;
        break;
      case obs::FabricEventKind::kRebuildFinished:
        ++finished;
        EXPECT_GT(e.seq, lastStartedSeq);
        EXPECT_EQ(e.c, 1u) << "a published epoch failed verification";
        break;
      case obs::FabricEventKind::kPublish: ++published; break;
      case obs::FabricEventKind::kRebuildSkipped: ++skipped; break;
      case obs::FabricEventKind::kReclaim: ++reclaimed; break;
      default: break;
    }
  }
  EXPECT_EQ(posted, 4u);
  EXPECT_EQ(opened, 3u);
  EXPECT_EQ(started, 2u);
  EXPECT_EQ(finished, 2u);
  EXPECT_EQ(published, 2u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(reclaimed, 2u);

  // And the service thread's spans nest under per-decision rebuild roots.
  const auto all = spans.snapshot();
  std::size_t roots = 0;
  for (const auto& s : all) {
    EXPECT_GT(s.endNs, 0u) << s.name << " left open";
    if (s.parent == util::SpanRecorder::kNoParent) {
      EXPECT_STREQ(s.name, "rebuild");
      ++roots;
    }
  }
  EXPECT_EQ(roots, 3u);  // two rebuilds + one cancelled flap decision
}

}  // namespace
}  // namespace downup::fabric
