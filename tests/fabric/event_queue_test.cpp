// FabricEventQueue: FIFO drain order, multi-producer integrity (every event
// delivered exactly once, per-producer order preserved) and consumer
// parking/wakeup.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fabric/event_queue.hpp"

namespace downup::fabric {
namespace {

FaultTransition linkDown(std::uint64_t cycle, std::uint32_t id) {
  return {cycle, FaultTransition::Entity::kLink, id, false};
}

TEST(FabricEventQueueTest, DrainReturnsPushOrder) {
  FabricEventQueue queue;
  EXPECT_TRUE(queue.empty());
  for (std::uint32_t i = 0; i < 5; ++i) queue.push(linkDown(100 + i, i));
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.pushedCount(), 5u);

  std::vector<FaultTransition> out;
  EXPECT_EQ(queue.drain(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], linkDown(100 + i, i));
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.drain(out), 0u);
}

TEST(FabricEventQueueTest, DrainAppendsWithoutClearing) {
  FabricEventQueue queue;
  queue.push(linkDown(1, 1));
  std::vector<FaultTransition> out;
  queue.drain(out);
  queue.push(linkDown(2, 2));
  queue.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].cycle, 1u);
  EXPECT_EQ(out[1].cycle, 2u);
}

TEST(FabricEventQueueTest, MultiProducerDeliversEverythingInProducerOrder) {
  FabricEventQueue queue;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 2000;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        // cycle encodes (producer, sequence) so the consumer can check
        // per-producer FIFO order after interleaving.
        queue.push({std::uint64_t{p} * kPerProducer + i,
                    FaultTransition::Entity::kLink, p, (i % 2) != 0});
      }
    });
  }

  // Concurrent consumer: drain until every event arrived.
  std::vector<FaultTransition> out;
  while (out.size() < std::size_t{kProducers} * kPerProducer) {
    if (queue.drain(out) == 0) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pushedCount(), std::uint64_t{kProducers} * kPerProducer);

  std::vector<std::uint64_t> nextSeq(kProducers, 0);
  for (const FaultTransition& t : out) {
    const std::uint32_t p = t.id;
    ASSERT_LT(p, kProducers);
    const std::uint64_t seq = t.cycle - std::uint64_t{p} * kPerProducer;
    EXPECT_EQ(seq, nextSeq[p]) << "producer " << p << " reordered";
    nextSeq[p] = seq + 1;
  }
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(nextSeq[p], kPerProducer);
  }
}

TEST(FabricEventQueueTest, WaitNonEmptyWakesOnPush) {
  FabricEventQueue queue;
  std::atomic<bool> stop{false};
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    if (queue.waitNonEmpty(stop)) woke.store(true, std::memory_order_release);
  });
  queue.push(linkDown(9, 0));
  consumer.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(FabricEventQueueTest, WaitNonEmptyWakesOnStop) {
  FabricEventQueue queue;
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    const bool nonEmpty = queue.waitNonEmpty(stop);
    EXPECT_FALSE(nonEmpty);
  });
  stop.store(true, std::memory_order_release);
  queue.notify();
  consumer.join();
}

TEST(FabricEventQueueTest, WaitNonEmptyTimesOut) {
  FabricEventQueue queue;
  std::atomic<bool> stop{false};
  EXPECT_FALSE(queue.waitNonEmpty(stop, /*timeoutMicros=*/1000));
}

}  // namespace
}  // namespace downup::fabric
