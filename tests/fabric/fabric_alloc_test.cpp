// The fabric's zero-cost-when-disabled contract, asserted directly: with
// no metrics or span recorder attached, the reader fast path (pin ->
// lookups -> unpin) performs zero heap allocations, and the always-on
// flight recorder's record() never allocates at all.
//
// Separate binary: overrides the global allocation functions with counting
// wrappers (one override per binary — test_release_alloc precedent).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "fabric/manager.hpp"
#include "obs/flight_recorder.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<bool> g_countAllocations{false};
std::atomic<std::uint64_t> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_countAllocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace downup::fabric {
namespace {

TEST(FabricAllocTest, ReaderFastPathAllocatesNothingWithHooksDetached) {
  util::Rng topoRng(11);
  const topo::Topology topo =
      topo::randomIrregular(24, {.maxPorts = 4}, topoRng);
  fault::Reconfigurator reconf(topo);
  const std::vector<std::uint8_t> linksUp(topo.linkCount(), 1);
  const std::vector<std::uint8_t> nodesUp(topo.nodeCount(), 1);
  const fault::ReconfigOutcome baseline = reconf.rebuild(linksUp, nodesUp);

  FabricManager fm(topo, *baseline.table);  // no metrics, no spans
  Reader reader = fm.makeReader();

  const auto round = [&] {
    std::uint64_t sink = 0;
    for (int batch = 0; batch < 100; ++batch) {
      PinnedSnapshot pin = fm.acquire(reader);
      for (topo::NodeId src = 0; src < topo.nodeCount(); ++src) {
        const auto dst =
            static_cast<topo::NodeId>((src + 7) % topo.nodeCount());
        sink ^= pin.table().firstChannels(src, dst).size();
        sink ^= pin.table().distance(src, dst);
      }
    }
    return sink;
  };

  round();  // warm-up: any lazy one-time growth happens here
  g_allocations.store(0, std::memory_order_relaxed);
  g_countAllocations.store(true, std::memory_order_relaxed);
  const std::uint64_t sink = round();
  g_countAllocations.store(false, std::memory_order_relaxed);
  asm volatile("" : : "g"(&sink) : "memory");

  EXPECT_EQ(g_allocations.load(), 0u)
      << "reader pin/lookup/unpin allocated with hooks detached";
}

TEST(FabricAllocTest, FlightRecorderRecordNeverAllocates) {
  obs::FlightRecorder rec(64);
  g_allocations.store(0, std::memory_order_relaxed);
  g_countAllocations.store(true, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    rec.record(obs::FabricEventKind::kTransitionPosted, i, 0, i & 7, 1);
  }
  g_countAllocations.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocations.load(), 0u) << "flight recorder record() allocated";
  EXPECT_EQ(rec.recorded(), 1000u);
}

TEST(FabricAllocTest, OracleViolationAnomalyRecordNeverAllocates) {
  // The gate's violation path in the fabric ends in exactly this record()
  // call; an allocating anomaly report would be the worst possible time to
  // touch the heap.
  obs::FlightRecorder rec(64);
  g_allocations.store(0, std::memory_order_relaxed);
  g_countAllocations.store(true, std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    rec.record(obs::FabricEventKind::kAnomaly, i,
               static_cast<std::uint64_t>(obs::AnomalyCode::kOracleViolation),
               /*epoch=*/i & 15, 0);
  }
  g_countAllocations.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocations.load(), 0u) << "anomaly record() allocated";
  EXPECT_EQ(rec.recorded(), 1000u);
}

}  // namespace
}  // namespace downup::fabric
