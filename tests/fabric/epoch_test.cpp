// Epoch lifecycle: lock-free pins across swaps, retirement only after the
// last pin releases, and fingerprint equality between every published table
// and a freshly built reference.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fabric/epoch.hpp"
#include "fault/reconfigure.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::fabric {
namespace {

topo::Topology makeSan(topo::NodeId switches, std::uint64_t seed) {
  util::Rng rng(seed);
  return topo::randomIrregular(switches, {.maxPorts = 4}, rng);
}

std::vector<std::uint8_t> allAlive(std::size_t count) {
  return std::vector<std::uint8_t>(count, 1);
}

TEST(EpochPublisherTest, BaselineIsEpochZero) {
  const topo::Topology topo = makeSan(16, 7);
  const fault::Reconfigurator reconf(topo);
  fault::ReconfigOutcome healthy = reconf.rebuild(
      allAlive(topo.linkCount()), allAlive(topo.nodeCount()));
  ASSERT_TRUE(healthy.ok());
  const std::uint64_t baseFp = healthy.table->fingerprint();

  EpochPublisher pub(*healthy.table);
  Reader reader = pub.makeReader();
  PinnedSnapshot pin = pub.acquire(reader);
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.epoch(), 0u);
  EXPECT_EQ(pub.currentEpoch(), 0u);
  EXPECT_EQ(pin.table().fingerprint(), baseFp);
  EXPECT_EQ(pub.retiredCount(), 0u);
}

TEST(EpochPublisherTest, RetirementWaitsForPinnedReader) {
  const topo::Topology topo = makeSan(16, 7);
  const fault::Reconfigurator reconf(topo);
  fault::ReconfigOutcome healthy = reconf.rebuild(
      allAlive(topo.linkCount()), allAlive(topo.nodeCount()));
  std::vector<std::uint8_t> degradedLinks = allAlive(topo.linkCount());
  degradedLinks[0] = 0;
  fault::ReconfigOutcome degraded =
      reconf.rebuild(degradedLinks, allAlive(topo.nodeCount()));
  ASSERT_TRUE(healthy.ok() && degraded.ok());
  const std::uint64_t degradedFp = degraded.table->fingerprint();

  EpochPublisher pub(*healthy.table);
  Reader reader = pub.makeReader();
  PinnedSnapshot oldPin = pub.acquire(reader);
  const std::uint64_t oldFp = oldPin.table().fingerprint();

  EXPECT_EQ(pub.publish(std::move(degraded.perms), std::move(degraded.table)),
            1u);
  // The old epoch is retired but still pinned: it must survive reclamation
  // and stay readable through the existing pin.
  EXPECT_EQ(pub.retiredCount(), 1u);
  EXPECT_EQ(pub.tryReclaim(), 0u);
  EXPECT_EQ(pub.retiredCount(), 1u);
  EXPECT_EQ(oldPin.epoch(), 0u);
  EXPECT_EQ(oldPin.table().fingerprint(), oldFp);
  // A fresh acquire through the same reader sees the new epoch.
  PinnedSnapshot newPin = pub.acquire(reader);
  EXPECT_EQ(newPin.epoch(), 1u);
  EXPECT_EQ(newPin.table().fingerprint(), degradedFp);
  // The re-acquire superseded the slot's announcement, so the old epoch is
  // now reclaimable even though oldPin's handle still exists (it must not
  // be dereferenced any more — drop it first in real code).
  oldPin.release();
  EXPECT_EQ(pub.tryReclaim(), 1u);
  EXPECT_EQ(pub.retiredCount(), 0u);
  EXPECT_EQ(pub.reclaimedCount(), 1u);
}

TEST(EpochPublisherTest, ReleaseDoesNotClobberNewerPinOnSameReader) {
  const topo::Topology topo = makeSan(16, 7);
  const fault::Reconfigurator reconf(topo);
  fault::ReconfigOutcome healthy = reconf.rebuild(
      allAlive(topo.linkCount()), allAlive(topo.nodeCount()));
  std::vector<std::uint8_t> degradedLinks = allAlive(topo.linkCount());
  degradedLinks[0] = 0;
  fault::ReconfigOutcome degraded =
      reconf.rebuild(degradedLinks, allAlive(topo.nodeCount()));

  EpochPublisher pub(*healthy.table);
  Reader reader = pub.makeReader();
  PinnedSnapshot oldPin = pub.acquire(reader);
  pub.publish(std::move(degraded.perms), std::move(degraded.table));
  PinnedSnapshot newPin = pub.acquire(reader);
  // Destroying the superseded handle must not clear the slot's newer
  // announcement: epoch 1 stays pinned.
  oldPin.release();
  pub.publish(std::move(healthy.perms), std::move(healthy.table));
  pub.tryReclaim();
  EXPECT_EQ(newPin.epoch(), 1u);
  EXPECT_EQ(pub.retiredCount(), 1u);  // epoch 1 still pinned by newPin
}

TEST(EpochPublisherTest, ReaderRegistryIsBounded) {
  const topo::Topology topo = makeSan(8, 3);
  const fault::Reconfigurator reconf(topo);
  fault::ReconfigOutcome healthy = reconf.rebuild(
      allAlive(topo.linkCount()), allAlive(topo.nodeCount()));
  EpochPublisher pub(*healthy.table, /*maxReaders=*/2);
  Reader a = pub.makeReader();
  Reader b = pub.makeReader();
  (void)a;
  (void)b;
  EXPECT_THROW(pub.makeReader(), std::length_error);
}

// Readers pin snapshots across concurrent swaps: every pinned table must be
// internally consistent (its fingerprint matches the reference build for
// its epoch's parity — a torn or reclaimed-under-foot read cannot), and
// everything retires once the readers stop.
TEST(EpochPublisherTest, ConcurrentReadersSurviveSwaps) {
  const topo::Topology topo = makeSan(24, 11);
  const fault::Reconfigurator reconf(topo);
  const std::vector<std::uint8_t> nodesUp = allAlive(topo.nodeCount());
  const std::vector<std::uint8_t> healthyLinks = allAlive(topo.linkCount());
  std::vector<std::uint8_t> degradedLinks = healthyLinks;
  degradedLinks[1] = 0;

  fault::ReconfigOutcome baseline = reconf.rebuild(healthyLinks, nodesUp);
  ASSERT_TRUE(baseline.ok());
  const std::uint64_t healthyFp = baseline.table->fingerprint();
  const std::uint64_t degradedFp =
      reconf.rebuild(degradedLinks, nodesUp).table->fingerprint();
  ASSERT_NE(healthyFp, degradedFp);

  EpochPublisher pub(*baseline.table);
  constexpr int kReaders = 4;
  constexpr std::uint64_t kSwaps = 60;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    Reader reader = pub.makeReader();
    readers.emplace_back([&, reader]() mutable {
      while (!done.load(std::memory_order_acquire)) {
        PinnedSnapshot pin = pub.acquire(reader);
        // Odd epochs published the degraded table, even ones the healthy
        // table (epoch 0 is the healthy baseline).
        const std::uint64_t expected =
            (pin.epoch() % 2 == 1) ? degradedFp : healthyFp;
        if (pin.table().fingerprint() != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t i = 1; i <= kSwaps; ++i) {
    fault::ReconfigOutcome next =
        reconf.rebuild((i % 2 == 1) ? degradedLinks : healthyLinks, nodesUp);
    ASSERT_EQ(pub.publish(std::move(next.perms), std::move(next.table)), i);
    pub.tryReclaim();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  // All pins are gone (thread-exit released them); retirement drains fully.
  pub.tryReclaim();
  EXPECT_EQ(pub.retiredCount(), 0u);
  EXPECT_EQ(pub.reclaimedCount(), kSwaps);
}

}  // namespace
}  // namespace downup::fabric
