// FabricManager: driven-mode publishes match the Reconfigurator reference
// bit for bit, service mode coalesces fault bursts (flap cancel-out, union
// dirty set), the FaultController sink feeds effective transitions, and an
// attached OracleGate audits every epoch publish from both writer modes —
// recording a kOracleViolation anomaly without ever blocking the publish.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "fabric/manager.hpp"
#include "fault/controller.hpp"
#include "fault/schedule.hpp"
#include "obs/flight_recorder.hpp"
#include "topology/generate.hpp"
#include "util/rng.hpp"
#include "verify/gate.hpp"

namespace downup::fabric {
namespace {

topo::Topology makeSan(topo::NodeId switches, std::uint64_t seed) {
  util::Rng rng(seed);
  return topo::randomIrregular(switches, {.maxPorts = 4}, rng);
}

std::vector<std::uint8_t> allAlive(std::size_t count) {
  return std::vector<std::uint8_t>(count, 1);
}

/// Spins until pred() holds or ~2s elapse; returns pred()'s final value.
template <class Pred>
bool waitUntil(Pred pred) {
  for (int i = 0; i < 2000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 11)
      : topo(makeSan(24, seed)),
        reconf(topo),
        baseline(reconf.rebuild(allAlive(topo.linkCount()),
                                allAlive(topo.nodeCount()))) {}

  topo::Topology topo;
  fault::Reconfigurator reconf;
  fault::ReconfigOutcome baseline;
};

TEST(FabricManagerTest, DrivenPublishMatchesReconfiguratorReference) {
  Fixture fx;
  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[2] = 0;
  const std::uint64_t referenceFp =
      fx.reconf.rebuild(linksUp, nodesUp).table->fingerprint();

  FabricManager fm(fx.topo, *fx.baseline.table);
  Reader reader = fm.makeReader();
  EXPECT_EQ(fm.acquire(reader).epoch(), 0u);

  const PublishResult result =
      fm.publishFromMasks(linksUp, nodesUp, /*incremental=*/false);
  EXPECT_TRUE(result.published);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.epoch, 1u);
  PinnedSnapshot pin = fm.acquire(reader);
  EXPECT_EQ(pin.epoch(), 1u);
  EXPECT_EQ(pin.table().fingerprint(), referenceFp);
  EXPECT_EQ(fm.rebuilds(), 1u);
}

TEST(FabricManagerTest, DrivenIncrementalMatchesFullRebuild) {
  Fixture fx;
  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[3] = 0;

  FabricManager inc(fx.topo, *fx.baseline.table);
  FabricManager full(fx.topo, *fx.baseline.table);
  Reader incReader = inc.makeReader();
  Reader fullReader = full.makeReader();
  inc.publishFromMasks(linksUp, nodesUp, /*incremental=*/true);
  full.publishFromMasks(linksUp, nodesUp, /*incremental=*/false);
  EXPECT_EQ(inc.acquire(incReader).table().fingerprint(),
            full.acquire(fullReader).table().fingerprint());
  EXPECT_LE(inc.incrementalDirtyFraction(linksUp, nodesUp), 1.0);
}

TEST(FabricManagerTest, ServiceCancelsFlapWithoutRebuilding) {
  Fixture fx;
  FabricManager fm(fx.topo, *fx.baseline.table);
  // DOWN then UP of the same link land in one coalescing batch: desired
  // masks equal applied masks, so the whole burst must cancel out.
  fm.onLinkStateChanged(100, 2, false);
  fm.onLinkStateChanged(100, 2, true);
  fm.startService();
  ASSERT_TRUE(waitUntil([&] { return fm.rebuildsSkipped() >= 1; }));
  fm.stopService();
  EXPECT_EQ(fm.rebuilds(), 0u);
  EXPECT_EQ(fm.currentEpoch(), 0u);
  EXPECT_EQ(fm.transitionsAbsorbed(), 2u);
}

TEST(FabricManagerTest, ServiceCoalescesBurstIntoOneRebuild) {
  Fixture fx;
  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[1] = 0;
  linksUp[4] = 0;
  const std::uint64_t referenceFp =
      fx.reconf.rebuild(linksUp, nodesUp).table->fingerprint();

  FabricManager fm(fx.topo, *fx.baseline.table);
  fm.onLinkStateChanged(100, 1, false);
  fm.onLinkStateChanged(100, 4, false);
  fm.startService();
  ASSERT_TRUE(waitUntil([&] { return fm.rebuilds() >= 1; }));
  fm.stopService();

  // Two failures, one rebuild over the union dirty set.
  EXPECT_EQ(fm.rebuilds(), 1u);
  EXPECT_EQ(fm.largestBatch(), 2u);
  EXPECT_TRUE(fm.allPublishedOk());
  Reader reader = fm.makeReader();
  PinnedSnapshot pin = fm.acquire(reader);
  EXPECT_EQ(pin.epoch(), 1u);
  EXPECT_EQ(pin.table().fingerprint(), referenceFp);
}

TEST(FabricManagerTest, StopServiceFlushesPendingTransitions) {
  Fixture fx;
  FabricManager fm(fx.topo, *fx.baseline.table);
  fm.startService();
  ASSERT_TRUE(fm.serviceRunning());
  fm.onLinkStateChanged(50, 5, false);
  fm.stopService();
  EXPECT_FALSE(fm.serviceRunning());
  // The shutdown drain still rebuilt for the pending failure.
  EXPECT_EQ(fm.rebuilds(), 1u);
  EXPECT_EQ(fm.currentEpoch(), 1u);
}

TEST(FabricManagerTest, ControllerSinkPostsEffectiveTransitions) {
  Fixture fx;
  // A same-cycle flap reaches the sink as DOWN then UP (the schedule's
  // down-before-up ordering), which the service then cancels out; a node
  // death cascades to its incident links as link transitions.
  fault::FaultSchedule schedule;
  schedule.linkUp(100, 2).linkDown(100, 2);  // reordered to down-then-up
  schedule.nodeDown(200, 3);
  fault::FaultController controller(fx.topo, schedule);

  FabricManager fm(fx.topo, *fx.baseline.table);
  controller.attachSink(&fm);

  controller.applyEventsAt(100);  // flap: net alive
  EXPECT_TRUE(controller.linkAlive(2));
  fm.startService();
  ASSERT_TRUE(waitUntil([&] { return fm.rebuildsSkipped() >= 1; }));
  EXPECT_EQ(fm.rebuilds(), 0u);

  controller.applyEventsAt(200);  // node death: rebuild required
  ASSERT_TRUE(waitUntil([&] { return fm.rebuilds() >= 1; }));
  fm.stopService();
  EXPECT_EQ(fm.rebuilds(), 1u);

  const std::uint64_t referenceFp =
      fx.reconf
          .rebuild(controller.linkAliveMask(), controller.nodeAliveMask())
          .table->fingerprint();
  Reader reader = fm.makeReader();
  EXPECT_EQ(fm.acquire(reader).table().fingerprint(), referenceFp);
}

/// kOracleViolation anomalies currently in the flight-recorder ring.
std::size_t oracleAnomalies(const obs::FlightRecorder& flight) {
  std::vector<obs::FabricEvent> events;
  flight.dump(events);
  return static_cast<std::size_t>(std::count_if(
      events.begin(), events.end(), [](const obs::FabricEvent& e) {
        return e.kind == obs::FabricEventKind::kAnomaly &&
               e.a == static_cast<std::uint64_t>(
                          obs::AnomalyCode::kOracleViolation);
      }));
}

TEST(FabricManagerTest, CleanOracleAuditsEveryDrivenPublishSilently) {
  Fixture fx;
  verify::OracleGate gate;
  FabricManager::Options options;
  options.oracle = &gate;
  FabricManager fm(fx.topo, *fx.baseline.table, options);

  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[2] = 0;
  const PublishResult result =
      fm.publishFromMasks(linksUp, nodesUp, /*incremental=*/false);
  EXPECT_TRUE(result.published);

  // The reconfiguration merge and the epoch publish were both audited...
  EXPECT_GE(gate.auditsAt("reconfig_full"), 1u);
  EXPECT_GE(gate.auditsAt("epoch_publish"), 1u);
  // ...and a healthy rule leaves no trace anywhere.
  EXPECT_EQ(gate.violations(), 0u);
  EXPECT_EQ(fm.oracleViolations(), 0u);
  EXPECT_TRUE(fm.allPublishedOk());
  EXPECT_EQ(oracleAnomalies(fm.flightRecorder()), 0u);
}

TEST(FabricManagerTest, PlantedViolationRecordsAnomalyButNeverBlocks) {
  Fixture fx;
  verify::OracleGate::Options gateOptions;
  gateOptions.plantViolation = true;
  verify::OracleGate gate(gateOptions);
  FabricManager::Options options;
  options.oracle = &gate;
  FabricManager fm(fx.topo, *fx.baseline.table, options);

  std::vector<std::uint8_t> linksUp = allAlive(fx.topo.linkCount());
  const std::vector<std::uint8_t> nodesUp = allAlive(fx.topo.nodeCount());
  linksUp[1] = 0;
  const PublishResult result =
      fm.publishFromMasks(linksUp, nodesUp, /*incremental=*/false);

  // Enforcement is observational: the epoch still went live (driven-mode
  // determinism), but the violation is counted and flight-recorded.
  EXPECT_TRUE(result.published);
  EXPECT_EQ(fm.currentEpoch(), 1u);
  EXPECT_GE(gate.violations(), 1u);
  EXPECT_EQ(fm.oracleViolations(), 1u);
  EXPECT_GE(oracleAnomalies(fm.flightRecorder()), 1u);
  // The oracle verdict must not be conflated with routing verification.
  EXPECT_TRUE(fm.allPublishedOk());
}

TEST(FabricManagerTest, ServiceModeRebuildsAuditThroughTheSameGate) {
  Fixture fx;
  verify::OracleGate::Options gateOptions;
  gateOptions.plantViolation = true;
  verify::OracleGate gate(gateOptions);
  FabricManager::Options options;
  options.oracle = &gate;
  FabricManager fm(fx.topo, *fx.baseline.table, options);

  fm.onLinkStateChanged(100, 3, false);
  fm.startService();
  ASSERT_TRUE(waitUntil([&] { return fm.rebuilds() >= 1; }));
  fm.stopService();

  EXPECT_GE(gate.auditsAt("epoch_publish"), 1u);
  EXPECT_EQ(fm.oracleViolations(), 1u);
  EXPECT_GE(oracleAnomalies(fm.flightRecorder()), 1u);
  EXPECT_EQ(fm.currentEpoch(), 1u);  // publish still happened
}

}  // namespace
}  // namespace downup::fabric
