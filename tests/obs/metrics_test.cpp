// MetricsRegistry unit tests: counter dimensions, tree-level bucketing,
// reset semantics between sweep samples, and mergeFrom thread-safety under
// the thread pool's parallelFor.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/thread_pool.hpp"

namespace downup::obs {
namespace {

constexpr std::uint32_t kLuTree =
    static_cast<std::uint32_t>(routing::index(routing::Dir::kLuTree));
constexpr std::uint32_t kRdTree =
    static_cast<std::uint32_t>(routing::index(routing::Dir::kRdTree));
constexpr std::uint32_t kLuCross =
    static_cast<std::uint32_t>(routing::index(routing::Dir::kLuCross));
constexpr std::uint32_t kRuCross =
    static_cast<std::uint32_t>(routing::index(routing::Dir::kRuCross));

TEST(MetricsRegistryTest, TurnDimensionsAreKeyedByRowAndDirection) {
  MetricsRegistry metrics(/*nodeCount=*/4, /*channelCount=*/6);
  metrics.recordTurnClaim(/*node=*/1, kLuTree, kRdTree, /*waited=*/5);
  metrics.recordTurnClaim(1, kLuTree, kRdTree, 0);
  metrics.recordTurnClaim(2, MetricsRegistry::kInjectRow, kLuTree, 0);
  metrics.recordTurnClaim(3, kRuCross, kRdTree, 7);

  EXPECT_EQ(metrics.turnTaken(kLuTree, kRdTree), 2u);
  EXPECT_EQ(metrics.turnTaken(MetricsRegistry::kInjectRow, kLuTree), 1u);
  EXPECT_EQ(metrics.turnTaken(kRuCross, kRdTree), 1u);
  EXPECT_EQ(metrics.turnTaken(kLuCross, kRdTree), 0u);

  // Blocked cycles: only claims with waited > 0 attribute, jointly keyed.
  EXPECT_EQ(metrics.blockedCycles(1, kLuTree, kRdTree), 5u);
  EXPECT_EQ(metrics.blockedCycles(3, kRuCross, kRdTree), 7u);
  EXPECT_EQ(metrics.nodeBlockedCycles(1), 5u);
  EXPECT_EQ(metrics.nodeBlockedCycles(2), 0u);
  EXPECT_EQ(metrics.turnBlockedCycles(kLuTree, kRdTree), 5u);
  EXPECT_EQ(metrics.turnBlockedCycles(kRuCross, kRdTree), 7u);
  EXPECT_EQ(metrics.totalBlockedCycles(), 12u);
  EXPECT_EQ(metrics.totalTurnsTaken(), 4u);
}

TEST(MetricsRegistryTest, LevelsBucketNodesAndChannels) {
  MetricsRegistry metrics(3, 4);
  const std::vector<std::uint32_t> nodeLevel = {0, 1, 2};
  const std::vector<std::uint32_t> channelLevel = {0, 0, 1, 1};
  metrics.setLevels(nodeLevel, channelLevel);
  ASSERT_EQ(metrics.levelCount(), 3u);
  EXPECT_EQ(metrics.levelPopulation()[0], 1u);
  EXPECT_EQ(metrics.levelPopulation()[1], 1u);
  EXPECT_EQ(metrics.levelPopulation()[2], 1u);
  EXPECT_EQ(metrics.nodeLevel(2), 2u);

  metrics.recordTurnClaim(2, kLuTree, kLuTree, 9);  // node level 2
  metrics.recordChannelFlit(0);                     // channel level 0
  metrics.recordChannelFlit(3);                     // channel level 1
  metrics.recordChannelFlit(3);

  EXPECT_EQ(metrics.levelBlockedCycles()[2], 9u);
  EXPECT_EQ(metrics.levelBlockedCycles()[0], 0u);
  EXPECT_EQ(metrics.levelFlits()[0], 1u);
  EXPECT_EQ(metrics.levelFlits()[1], 2u);
  EXPECT_EQ(metrics.channelFlits()[3], 2u);

  const auto utilization = metrics.channelUtilization(/*measuredCycles=*/4);
  EXPECT_DOUBLE_EQ(utilization[3], 0.5);
  EXPECT_DOUBLE_EQ(utilization[1], 0.0);
}

TEST(MetricsRegistryTest, SetLevelsRejectsWrongSizes) {
  MetricsRegistry metrics(2, 2);
  const std::vector<std::uint32_t> ok = {0, 0};
  const std::vector<std::uint32_t> bad = {0, 0, 0};
  EXPECT_THROW(metrics.setLevels(bad, ok), std::invalid_argument);
  EXPECT_THROW(metrics.setLevels(ok, bad), std::invalid_argument);
}

TEST(MetricsRegistryTest, ResetClearsCountersAndKeepsLevels) {
  MetricsRegistry metrics(2, 2);
  const std::vector<std::uint32_t> nodeLevel = {0, 1};
  const std::vector<std::uint32_t> channelLevel = {0, 1};
  metrics.setLevels(nodeLevel, channelLevel);
  metrics.recordTurnClaim(1, kLuTree, kRdTree, 3);
  metrics.recordChannelFlit(1);

  metrics.reset();
  EXPECT_EQ(metrics.totalTurnsTaken(), 0u);
  EXPECT_EQ(metrics.totalBlockedCycles(), 0u);
  EXPECT_EQ(metrics.channelFlits()[1], 0u);
  EXPECT_EQ(metrics.levelFlits()[1], 0u);
  // The level mapping survives (sweep samples reuse one registry shape).
  EXPECT_EQ(metrics.levelCount(), 2u);
  EXPECT_EQ(metrics.nodeLevel(1), 1u);
  metrics.recordChannelFlit(1);
  EXPECT_EQ(metrics.levelFlits()[1], 1u);
}

TEST(MetricsRegistryTest, MergeRejectsShapeMismatch) {
  MetricsRegistry a(2, 2);
  MetricsRegistry wrongNodes(3, 2);
  MetricsRegistry wrongChannels(2, 4);
  EXPECT_THROW(a.mergeFrom(wrongNodes), std::invalid_argument);
  EXPECT_THROW(a.mergeFrom(wrongChannels), std::invalid_argument);
}

TEST(MetricsRegistryTest, MergeFoldsAllDimensions) {
  MetricsRegistry a(2, 2);
  MetricsRegistry b(2, 2);
  a.recordTurnClaim(0, kLuTree, kRdTree, 2);
  b.recordTurnClaim(0, kLuTree, kRdTree, 3);
  b.recordChannelFlit(1);
  a.mergeFrom(b);
  EXPECT_EQ(a.turnTaken(kLuTree, kRdTree), 2u);
  EXPECT_EQ(a.blockedCycles(0, kLuTree, kRdTree), 5u);
  EXPECT_EQ(a.channelFlits()[1], 1u);
  EXPECT_EQ(a.levelBlockedCycles()[0], 5u);
}

TEST(MetricsRegistryTest, ConcurrentMergesUnderParallelForSumExactly) {
  // The sweep-folding pattern: every parallel run owns a registry and folds
  // it into one destination from inside parallelFor.  The destination's
  // mutex must make the fold exact at any thread count.
  constexpr std::size_t kRuns = 32;
  constexpr std::uint64_t kClaimsPerRun = 500;
  MetricsRegistry total(4, 4);
  util::ThreadPool pool(4);
  util::parallelFor(pool, kRuns, [&total](std::size_t run) {
    MetricsRegistry local(4, 4);
    for (std::uint64_t i = 0; i < kClaimsPerRun; ++i) {
      local.recordTurnClaim(static_cast<NodeId>(run % 4), kLuTree, kRdTree, 1);
      local.recordChannelFlit(static_cast<ChannelId>(run % 4));
    }
    total.mergeFrom(local);
  });
  EXPECT_EQ(total.totalTurnsTaken(), kRuns * kClaimsPerRun);
  EXPECT_EQ(total.totalBlockedCycles(), kRuns * kClaimsPerRun);
  EXPECT_EQ(total.turnTaken(kLuTree, kRdTree), kRuns * kClaimsPerRun);
  std::uint64_t flits = 0;
  for (std::uint64_t f : total.channelFlits()) flits += f;
  EXPECT_EQ(flits, kRuns * kClaimsPerRun);
}

}  // namespace
}  // namespace downup::obs
