// Control-plane span tracing: recorder nesting/threading semantics, the
// exporters' output shape, and the two inertness guarantees — a null
// recorder is a no-op at every call site, and an attached recorder leaves
// a fault-injection simulation bit-for-bit identical.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/schedule.hpp"
#include "obs/observer.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"
#include "util/perf_counters.hpp"

namespace downup {
namespace {

using util::ScopedSpan;
using util::SpanRecorder;

TEST(SpanRecorderTest, NestingTracksParentAndDepthPerThread) {
  SpanRecorder rec;
  {
    ScopedSpan root(&rec, "rebuild");
    root.arg("batch", 3);
    {
      ScopedSpan child(&rec, "table_build");
      { ScopedSpan grandchild(&rec, "bfs"); }
      { ScopedSpan grandchild(&rec, "candidate_fill"); }
    }
    { ScopedSpan child(&rec, "publish"); }
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_STREQ(spans[0].name, "rebuild");
  EXPECT_EQ(spans[0].parent, SpanRecorder::kNoParent);
  EXPECT_EQ(spans[0].depth, 0);
  ASSERT_EQ(spans[0].argCount, 1);
  EXPECT_STREQ(spans[0].args[0].key, "batch");
  EXPECT_DOUBLE_EQ(spans[0].args[0].value, 3.0);

  EXPECT_STREQ(spans[1].name, "table_build");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "bfs");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_STREQ(spans[3].name, "candidate_fill");
  EXPECT_EQ(spans[3].parent, 1u);
  EXPECT_STREQ(spans[4].name, "publish");
  EXPECT_EQ(spans[4].parent, 0u);
  EXPECT_EQ(spans[4].depth, 1);

  // Every span closed, children contained in their parents.
  for (const auto& s : spans) {
    EXPECT_GT(s.endNs, 0u) << s.name;
    if (s.parent != SpanRecorder::kNoParent) {
      EXPECT_GE(s.startNs, spans[s.parent].startNs) << s.name;
      EXPECT_LE(s.endNs, spans[s.parent].endNs) << s.name;
    }
  }
}

TEST(SpanRecorderTest, NullRecorderIsANoOpEverywhere) {
  ScopedSpan span(nullptr, "rebuild");
  span.arg("ignored", 1.0);
  span.close();  // idempotent, no recorder to touch
}

TEST(SpanRecorderTest, ExtraArgsBeyondTheCapAreDropped) {
  SpanRecorder rec;
  {
    ScopedSpan span(&rec, "rebuild");
    for (int i = 0; i < 10; ++i) span.arg("k", i);
  }
  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].argCount, SpanRecorder::kMaxArgs);
}

TEST(SpanRecorderTest, ThreadsGetDenseIndependentTracks) {
  SpanRecorder rec;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 8; ++i) {
        ScopedSpan outer(&rec, "outer");
        ScopedSpan inner(&rec, "inner");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto spans = rec.snapshot();
  ASSERT_EQ(spans.size(), kThreads * 16u);
  std::vector<std::uint32_t> tids;
  for (const auto& s : spans) {
    tids.push_back(s.tid);
    // Nesting never crosses threads: a child's parent has the same tid.
    if (s.parent != SpanRecorder::kNoParent) {
      EXPECT_EQ(spans[s.parent].tid, s.tid);
      EXPECT_STREQ(s.name, "inner");
    } else {
      EXPECT_STREQ(s.name, "outer");
    }
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(tids.back(), static_cast<std::uint32_t>(kThreads - 1));
}

TEST(SpanRecorderTest, ClearDropsRecordedSpans) {
  SpanRecorder rec;
  { ScopedSpan span(&rec, "rebuild"); }
  EXPECT_EQ(rec.size(), 1u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  { ScopedSpan span(&rec, "rebuild"); }
  EXPECT_EQ(rec.size(), 1u);
}

TEST(SpanExportTest, JsonlCarriesSchemaAndOneRecordPerSpan) {
  SpanRecorder rec;
  {
    ScopedSpan root(&rec, "rebuild");
    ScopedSpan child(&rec, "table_build");
    child.arg("destinations", 24);
  }
  std::ostringstream out;
  obs::writeSpansJsonl(rec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"obs_spans/2\""), std::string::npos);
  EXPECT_NE(text.find("\"gitRev\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"rebuild\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"table_build\""), std::string::npos);
  EXPECT_NE(text.find("\"destinations\":24"), std::string::npos);
  // No counter group was ever attached: the meta must say so explicitly
  // (the "never silent zeros" contract) and no span may carry counters.
  EXPECT_NE(text.find("\"counters\":\"detached\""), std::string::npos);
  EXPECT_EQ(text.find("\"ipc\""), std::string::npos);
  EXPECT_EQ(text.find("\"alloc\""), std::string::npos);
  // One meta line + one line per span (no aggregates registered).
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(SpanExportTest, AggregateSlotsExportAsAggregateRecords) {
  SpanRecorder rec;
  const std::uint32_t flow = rec.registerAggregate("phase/flow_control");
  const std::uint32_t arb = rec.registerAggregate("phase/arbitration");
  rec.accumulate(flow, 120);
  rec.accumulate(flow, 80);
  rec.accumulate(arb, 500);
  { ScopedSpan span(&rec, "rebuild"); }

  std::ostringstream out;
  obs::writeSpansJsonl(rec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"aggregates\":2"), std::string::npos);
  EXPECT_NE(text.find("{\"record\":\"aggregate\",\"name\":"
                      "\"phase/flow_control\",\"count\":2,\"totalNs\":200}"),
            std::string::npos);
  EXPECT_NE(text.find("{\"record\":\"aggregate\",\"name\":"
                      "\"phase/arbitration\",\"count\":1,\"totalNs\":500}"),
            std::string::npos);
  // Meta + one span + two aggregate records.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);

  // clear() zeroes totals but keeps registrations (ids stay valid).
  rec.clear();
  rec.accumulate(arb, 7);
  const auto aggs = rec.aggregates();
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].count, 0u);
  EXPECT_EQ(aggs[0].totalNs, 0u);
  EXPECT_EQ(aggs[1].count, 1u);
  EXPECT_EQ(aggs[1].totalNs, 7u);
}

TEST(SpanExportTest, CounterMetaReportsAvailabilityNeverSilently) {
  // Pin the fallback path deterministically with a force-disabled group:
  // the meta must carry the status and the reason.
  util::PerfCounterGroup disabled(
      util::PerfCounterGroup::Options{.disabled = true});
  SpanRecorder rec;
  rec.attachCounters(&disabled);
  { ScopedSpan span(&rec, "rebuild"); }
  std::ostringstream out;
  obs::writeSpansJsonl(rec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"counters\":\"unavailable\""), std::string::npos);
  EXPECT_NE(text.find("\"countersReason\":\"disabled by caller\""),
            std::string::npos);
  EXPECT_EQ(text.find("\"ipc\""), std::string::npos);

  // A live group: whatever subset the environment opened must be declared
  // in the meta, and spans on the attaching thread carry exactly that
  // subset.
  util::PerfCounterGroup live;
  if (live.available()) {
    SpanRecorder counted;
    counted.attachCounters(&live);
    { ScopedSpan span(&counted, "rebuild"); }
    std::ostringstream out2;
    obs::writeSpansJsonl(counted, out2);
    const std::string text2 = out2.str();
    const bool full =
        live.eventMask() == ((1u << util::kPerfEventCount) - 1u);
    EXPECT_NE(text2.find(full ? "\"counters\":\"available\""
                              : "\"counters\":\"partial\""),
              std::string::npos);
    EXPECT_NE(text2.find("\"counterEvents\":["), std::string::npos);
    const auto spans = counted.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].counters.mask, live.eventMask());
  }
}

TEST(SpanExportTest, ChromeTraceEmitsCompleteEventsPerfettoCanLoad) {
  SpanRecorder rec;
  {
    ScopedSpan root(&rec, "rebuild");
    ScopedSpan child(&rec, "publish");
  }
  std::ostringstream out;
  obs::writeSpansChromeTrace(rec, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"rebuild\""), std::string::npos);
  EXPECT_NE(text.find("process_name"), std::string::npos);
  // Valid JSON needs the array closed.
  EXPECT_EQ(text.back(), '\n');
  EXPECT_NE(text.find("]"), std::string::npos);
}

TEST(SpanInertnessTest, ControlPlaneSpansLeaveFaultRunBitForBitIdentical) {
  // The reconfiguration pipeline is the instrumented path, so compare a
  // run that actually rebuilds mid-flight: same schedule, observer with
  // control-plane spans on vs no observer at all.
  util::Rng topoRng(2024);
  const topo::Topology topo =
      topo::randomIrregular(24, {.maxPorts = 4}, topoRng);
  util::Rng treeRng(7);
  const auto ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);
  const auto schedule =
      fault::FaultSchedule::randomLinkFailures(topo, 2, 800, 400, 5);
  const sim::UniformTraffic traffic(topo.nodeCount());

  sim::SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 500;
  config.measureCycles = 3000;
  config.seed = 12345;
  config.reconfigLatencyCycles = 50;
  config.faultSchedule = &schedule;

  sim::WormholeNetwork bare(routing.table(), traffic, 0.10, config);
  const sim::RunStats expected = bare.run();
  ASSERT_GT(expected.reconfigurations, 0u);

  obs::Observer observer({.controlPlaneSpans = true}, topo, &ct);
  sim::SimConfig observed = config;
  observed.observer = &observer;
  sim::WormholeNetwork traced(routing.table(), traffic, 0.10, observed);
  const sim::RunStats actual = traced.run();

  EXPECT_EQ(actual.cycles, expected.cycles);
  EXPECT_EQ(actual.packetsGenerated, expected.packetsGenerated);
  EXPECT_EQ(actual.packetsEjectedMeasured, expected.packetsEjectedMeasured);
  EXPECT_EQ(actual.flitsEjectedMeasured, expected.flitsEjectedMeasured);
  EXPECT_EQ(actual.reconfigurations, expected.reconfigurations);
  EXPECT_EQ(actual.packetsDroppedInFlight, expected.packetsDroppedInFlight);
  EXPECT_DOUBLE_EQ(actual.avgLatency, expected.avgLatency);
  EXPECT_DOUBLE_EQ(actual.p50Latency, expected.p50Latency);
  EXPECT_DOUBLE_EQ(actual.p99Latency, expected.p99Latency);
  ASSERT_EQ(actual.channelUtilization.size(),
            expected.channelUtilization.size());
  for (std::size_t c = 0; c < actual.channelUtilization.size(); ++c) {
    EXPECT_DOUBLE_EQ(actual.channelUtilization[c],
                     expected.channelUtilization[c]);
  }

  // And the recorder actually captured the rebuilds it watched.
  ASSERT_NE(observer.controlPlaneSpans(), nullptr);
  const auto spans = observer.controlPlaneSpans()->snapshot();
  std::size_t rebuildRoots = 0;
  for (const auto& s : spans) {
    if (std::strcmp(s.name, "rebuild") == 0 &&
        s.parent == SpanRecorder::kNoParent) {
      ++rebuildRoots;
    }
  }
  EXPECT_EQ(rebuildRoots, expected.reconfigurations);
}

}  // namespace
}  // namespace downup
