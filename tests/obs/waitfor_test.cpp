// WaitForSampler: edge accounting, cycle detection, standing-stall
// attribution, merge — plus the engine-level claims the sampler exists to
// make: seeded DOWN/UP runs never show a channel wait cycle, and a
// deliberately broken turn rule on a ring (the deadlock_test scenario)
// produces a hard cycle witness.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/downup_routing.hpp"
#include "obs/observer.hpp"
#include "obs/waitfor.hpp"
#include "routing/algorithm.hpp"
#include "routing/updown.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"

namespace downup::obs {
namespace {

WaitForSampler makeSampler(std::uint32_t vcCount = 1) {
  return WaitForSampler(/*samplePeriodCycles=*/8, /*nodeCount=*/4,
                        /*channelCount=*/6, /*totalVcs=*/6 * vcCount,
                        vcCount);
}

TEST(WaitForTest, ConstructorRejectsZeroPeriodOrVcs) {
  EXPECT_THROW(WaitForSampler(0, 4, 6, 6, 1), std::invalid_argument);
  EXPECT_THROW(WaitForSampler(8, 4, 6, 6, 0), std::invalid_argument);
}

TEST(WaitForTest, DuePeriodAndEdgeAccounting) {
  WaitForSampler wf = makeSampler();
  EXPECT_TRUE(wf.due(0));
  EXPECT_FALSE(wf.due(7));
  EXPECT_TRUE(wf.due(16));

  wf.beginSample(16);
  EXPECT_FALSE(wf.noteBlockedHeader(0, 42));  // first sighting: not standing
  wf.addHoldEdge(0, 1);
  wf.addRequestEdge(1, 2, /*fullyOwned=*/true, /*standing=*/false,
                    /*node=*/0, /*fromDir=*/0, /*toDir=*/1);
  // A candidate with a free VC never joins the graph; at vcCount == 1 it is
  // not even saturation pressure (the channel is simply free).
  wf.addRequestEdge(1, 3, /*fullyOwned=*/false, /*standing=*/false, 0, 0, 1);
  wf.endSample();

  EXPECT_EQ(wf.samples(), 1u);
  EXPECT_EQ(wf.blockedHeadersTotal(), 1u);
  EXPECT_EQ(wf.blockedHeadersPeak(), 1u);
  EXPECT_EQ(wf.holdEdgesTotal(), 1u);
  EXPECT_EQ(wf.requestEdgesTotal(), 1u);
  EXPECT_EQ(wf.partialRequestsTotal(), 0u);
  EXPECT_FALSE(wf.everCycle());  // 0 -> 1 -> 2 is a chain, not a knot
  EXPECT_TRUE(wf.witnessCycle().empty());
}

TEST(WaitForTest, PartialRequestsCountOnlyWithMultipleVcs) {
  WaitForSampler multi = makeSampler(/*vcCount=*/2);
  multi.beginSample(0);
  multi.addRequestEdge(0, 1, /*fullyOwned=*/false, false, 0, 0, 1);
  multi.endSample();
  EXPECT_EQ(multi.partialRequestsTotal(), 1u);
  EXPECT_EQ(multi.requestEdgesTotal(), 0u);
  EXPECT_FALSE(multi.cyclesAreHard());

  WaitForSampler single = makeSampler(/*vcCount=*/1);
  single.beginSample(0);
  single.addRequestEdge(0, 1, /*fullyOwned=*/false, false, 0, 0, 1);
  single.endSample();
  EXPECT_EQ(single.partialRequestsTotal(), 0u);
  EXPECT_TRUE(single.cyclesAreHard());
}

TEST(WaitForTest, DetectsDependencyCycleAndExtractsWitness) {
  WaitForSampler wf = makeSampler();
  wf.beginSample(24);
  wf.addHoldEdge(0, 1);
  wf.addRequestEdge(1, 2, true, false, 0, 0, 1);
  wf.addRequestEdge(2, 0, true, false, 1, 0, 1);
  wf.addHoldEdge(4, 5);  // disjoint chain must not confuse the DFS
  wf.endSample();

  EXPECT_TRUE(wf.everCycle());
  EXPECT_EQ(wf.cycleSamples(), 1u);
  EXPECT_EQ(wf.lastCycleSampleCycle(), 24u);
  ASSERT_EQ(wf.witnessCycle().size(), 3u);
  // The witness is the cycle in dependency order, whatever its phase.
  for (const ChannelId c : wf.witnessCycle()) EXPECT_LT(c, 3u);

  // A later clean sample leaves the cycle statistics in place.
  wf.beginSample(32);
  wf.addHoldEdge(0, 1);
  wf.endSample();
  EXPECT_EQ(wf.cycleSamples(), 1u);
  EXPECT_EQ(wf.samples(), 2u);
}

TEST(WaitForTest, StandingStallsNeedConsecutiveSamplesOfSameOwner) {
  WaitForSampler wf = makeSampler();
  wf.beginSample(0);
  EXPECT_FALSE(wf.noteBlockedHeader(2, 42));
  wf.endSample();

  wf.beginSample(8);
  EXPECT_TRUE(wf.noteBlockedHeader(2, 42));  // same owner, same VC: standing
  wf.addRequestEdge(2, 3, /*fullyOwned=*/true, /*standing=*/true,
                    /*node=*/1, /*fromDir=*/2, /*toDir=*/5);
  wf.endSample();

  wf.beginSample(16);
  EXPECT_FALSE(wf.noteBlockedHeader(2, 43));  // different worm: new stall
  wf.endSample();

  EXPECT_EQ(wf.standingStallsTotal(), 1u);
  EXPECT_EQ(wf.standingStalls(1, 2, 5), 1u);
  EXPECT_EQ(wf.standingStalls(1, 2, 4), 0u);
}

TEST(WaitForTest, MergeSumsCountersAndAdoptsWitness) {
  WaitForSampler a = makeSampler();
  WaitForSampler b = makeSampler();
  a.beginSample(0);
  a.noteBlockedHeader(0, 1);
  a.addHoldEdge(0, 1);
  a.endSample();
  b.beginSample(8);
  b.noteBlockedHeader(1, 2);
  b.noteBlockedHeader(2, 3);
  b.addHoldEdge(0, 1);
  b.addRequestEdge(1, 0, true, false, 0, 0, 1);
  b.endSample();
  ASSERT_TRUE(b.everCycle());

  a.mergeFrom(b);
  EXPECT_EQ(a.samples(), 2u);
  EXPECT_EQ(a.blockedHeadersTotal(), 3u);
  EXPECT_EQ(a.blockedHeadersPeak(), 2u);
  EXPECT_EQ(a.holdEdgesTotal(), 2u);
  EXPECT_EQ(a.cycleSamples(), 1u);
  EXPECT_EQ(a.lastCycleSampleCycle(), 8u);
  EXPECT_FALSE(a.witnessCycle().empty());

  WaitForSampler mismatched(8, 4, 7, 7, 1);
  EXPECT_THROW(a.mergeFrom(mismatched), std::invalid_argument);
}

TEST(WaitForTest, ResetClearsStatisticsAndCarryOver) {
  WaitForSampler wf = makeSampler();
  wf.beginSample(0);
  wf.noteBlockedHeader(0, 7);
  wf.addHoldEdge(0, 1);
  wf.addRequestEdge(1, 0, true, false, 0, 0, 1);
  wf.endSample();
  wf.reset();
  EXPECT_EQ(wf.samples(), 0u);
  EXPECT_EQ(wf.blockedHeadersTotal(), 0u);
  EXPECT_EQ(wf.holdEdgesTotal(), 0u);
  EXPECT_EQ(wf.cycleSamples(), 0u);
  EXPECT_TRUE(wf.witnessCycle().empty());
  EXPECT_EQ(wf.standingStallsTotal(), 0u);
  wf.beginSample(0);
  EXPECT_FALSE(wf.noteBlockedHeader(0, 7));  // carry-over cleared too
  wf.endSample();
}

// --- engine-level claims ---

TEST(WaitForEngineTest, SeededDownUpRunsNeverShowCycle) {
  for (const std::uint64_t seed : {2024u, 77u}) {
    util::Rng topoRng(seed);
    const topo::Topology topo =
        topo::randomIrregular(24, {.maxPorts = 4}, topoRng);
    util::Rng treeRng(seed + 1);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
    const routing::Routing routing = core::buildDownUp(topo, ct);

    sim::SimConfig config;
    config.packetLengthFlits = 16;
    config.warmupCycles = 200;
    config.measureCycles = 3000;
    config.seed = seed + 2;
    Observer observer({.waitForSamplePeriod = 16}, topo, &ct);
    config.observer = &observer;

    const sim::UniformTraffic traffic(topo.nodeCount());
    // Heavy load so plenty of blocked headers feed the graph.
    sim::WormholeNetwork net(routing.table(), traffic, 0.4, config);
    net.run();

    const WaitForSampler& wf = *observer.waitFor();
    EXPECT_GT(wf.samples(), 0u);
    EXPECT_GT(wf.blockedHeadersTotal(), 0u)
        << "load too low to exercise the sampler";
    EXPECT_FALSE(wf.everCycle())
        << "DOWN/UP produced a channel wait cycle at seed " << seed;
    EXPECT_TRUE(wf.witnessCycle().empty());
  }
}

TEST(WaitForEngineTest, UnrestrictedRingProducesHardCycleWitness) {
  // The deadlock_test scenario with the sampler attached: every node of a
  // 5-ring sends a long worm two hops clockwise with all turns allowed; the
  // circular wait forms, the watchdog fires, and the wait-for graph must
  // contain the 5-channel dependency cycle as a hard witness.
  const topo::Topology topo = topo::ring(5);
  util::Rng rng(1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  routing::TurnPermissions perms(topo, routing::classifyUpDown(topo, ct),
                                 routing::TurnSet::allAllowed());
  const routing::Routing routing("unrestricted", std::move(perms));

  sim::SimConfig config;
  config.packetLengthFlits = 128;  // long worms wrap around the small ring
  config.warmupCycles = 0;
  config.measureCycles = 60000;
  config.deadlockThresholdCycles = 2000;
  config.seed = 3;
  Observer observer({.waitForSamplePeriod = 32}, topo, &ct);
  config.observer = &observer;

  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, 0.0, config);
  for (topo::NodeId v = 0; v < 5; ++v) net.injectPacket(v, (v + 2) % 5);
  for (int i = 0; i < 20000 && !net.deadlocked(); ++i) net.step();
  ASSERT_TRUE(net.deadlocked());

  const WaitForSampler& wf = *observer.waitFor();
  EXPECT_TRUE(wf.everCycle())
      << "deadlocked ring must show a wait-for cycle";
  EXPECT_TRUE(wf.cyclesAreHard());  // one VC: a cycle IS a deadlock witness
  EXPECT_GE(wf.cycleSamples(), 1u);
  // All five clockwise channels participate in the knot.
  EXPECT_EQ(wf.witnessCycle().size(), 5u);
}

}  // namespace
}  // namespace downup::obs
