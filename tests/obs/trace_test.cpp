// Packet tracer tests: sampling, per-hop event well-formedness on a real
// simulation, exporter output shape, and the central observability
// guarantee — an attached observer changes nothing about the run.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "core/downup_routing.hpp"
#include "obs/export.hpp"
#include "obs/observer.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace downup {
namespace {

struct Fixture {
  Fixture()
      : topo(makeTopology()),
        ct(makeTree(topo)),
        routing(core::buildDownUp(topo, ct)) {}

  static topo::Topology makeTopology() {
    util::Rng rng(2024);
    return topo::randomIrregular(24, {.maxPorts = 4}, rng);
  }
  static tree::CoordinatedTree makeTree(const topo::Topology& topo) {
    util::Rng rng(7);
    return tree::CoordinatedTree::build(topo, tree::TreePolicy::kM1SmallestFirst,
                                        rng);
  }

  sim::SimConfig config() const {
    sim::SimConfig c;
    c.packetLengthFlits = 8;
    c.warmupCycles = 200;
    c.measureCycles = 2000;
    c.seed = 99;
    return c;
  }

  topo::Topology topo;
  tree::CoordinatedTree ct;
  routing::Routing routing;
};

TEST(PacketTracerTest, SamplingIsDeterministicByPacketId) {
  obs::PacketTracer off(0);
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.sampled(0));

  obs::PacketTracer everyThird(3);
  EXPECT_TRUE(everyThird.enabled());
  EXPECT_TRUE(everyThird.sampled(0));
  EXPECT_FALSE(everyThird.sampled(1));
  EXPECT_FALSE(everyThird.sampled(2));
  EXPECT_TRUE(everyThird.sampled(3));
}

TEST(PacketTracerTest, SimulationEventsAreWellFormedPerPacket) {
  const Fixture f;
  obs::Observer observer({.traceSampleEvery = 1}, f.topo, &f.ct);
  sim::SimConfig config = f.config();
  config.observer = &observer;
  const sim::UniformTraffic traffic(f.topo.nodeCount());
  sim::WormholeNetwork net(f.routing.table(), traffic, 0.05, config);
  net.run();

  const obs::PacketTracer& tracer = *observer.tracer();
  ASSERT_GT(tracer.packets().size(), 10u);
  std::size_t ejected = 0;
  for (const auto& packet : tracer.packets()) {
    const auto events = tracer.packetEvents(packet.packet);
    ASSERT_FALSE(events.empty());
    // Life starts with generation at the source, cycles never run backward.
    EXPECT_EQ(events.front().kind, obs::TraceEventKind::kGenerated);
    EXPECT_EQ(events.front().node, packet.src);
    EXPECT_EQ(events.front().cycle, packet.genCycle);
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i].cycle, events[i - 1].cycle);
    }
    const auto count = [&events](obs::TraceEventKind kind) {
      return std::count_if(events.begin(), events.end(),
                           [kind](const auto& e) { return e.kind == kind; });
    };
    if (count(obs::TraceEventKind::kEjected) == 0) continue;  // still in flight
    ++ejected;
    EXPECT_EQ(count(obs::TraceEventKind::kGenerated), 1);
    EXPECT_EQ(count(obs::TraceEventKind::kInjected), 1);
    EXPECT_EQ(count(obs::TraceEventKind::kEjected), 1);
    // One VC/eject claim per hop plus the ejection claim; every channel
    // crossing was claimed first.
    EXPECT_GE(count(obs::TraceEventKind::kVcAllocated), 2);
    EXPECT_EQ(count(obs::TraceEventKind::kVcAllocated),
              count(obs::TraceEventKind::kChannelCrossed) + 1);
    // The ejection claim and the eject event carry no channel; the eject
    // event lands at the destination.
    const auto& last = events.back();
    EXPECT_EQ(last.kind, obs::TraceEventKind::kEjected);
    EXPECT_EQ(last.node, packet.dst);
    EXPECT_EQ(last.channel, obs::PacketTracer::kNoChannel);
  }
  EXPECT_GT(ejected, 10u);
}

TEST(PacketTracerTest, ExportersEmitTheDocumentedShapes) {
  const Fixture f;
  obs::Observer observer({.metrics = true, .traceSampleEvery = 2}, f.topo,
                         &f.ct);
  sim::SimConfig config = f.config();
  config.observer = &observer;
  const sim::UniformTraffic traffic(f.topo.nodeCount());
  sim::WormholeNetwork net(f.routing.table(), traffic, 0.05, config);
  net.run();

  std::ostringstream chrome;
  obs::writeChromeTrace(*observer.tracer(), &f.topo, chrome);
  const std::string chromeText = chrome.str();
  EXPECT_NE(chromeText.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chromeText.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chromeText.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(chromeText.back(), '\n');

  std::ostringstream jsonl;
  obs::writeTraceJsonl(*observer.tracer(), &f.topo, jsonl);
  const std::string jsonlText = jsonl.str();
  EXPECT_NE(jsonlText.find("\"schema\":\"obs_trace/1\""), std::string::npos);
  EXPECT_NE(jsonlText.find("\"record\":\"packet\""), std::string::npos);
  EXPECT_NE(jsonlText.find("\"record\":\"event\""), std::string::npos);

  std::ostringstream metrics;
  obs::writeMetricsJsonl(*observer.metrics(), &f.topo, config.measureCycles,
                         metrics);
  const std::string metricsText = metrics.str();
  EXPECT_NE(metricsText.find("\"schema\":\"obs_metrics/1\""),
            std::string::npos);
  EXPECT_NE(metricsText.find("\"gitRev\""), std::string::npos);
  EXPECT_NE(metricsText.find("\"timestampUtc\""), std::string::npos);
  EXPECT_NE(metricsText.find("\"record\":\"level\""), std::string::npos);
  EXPECT_NE(metricsText.find("\"record\":\"turn\""), std::string::npos);
}

TEST(ObserverTest, AttachedObserverLeavesTheRunBitForBitIdentical) {
  // The tentpole guarantee: hooks never draw RNG or alter scheduling, so a
  // fully-enabled observer produces the exact same RunStats as no observer.
  const Fixture f;
  const sim::UniformTraffic traffic(f.topo.nodeCount());

  sim::SimConfig plain = f.config();
  sim::WormholeNetwork bare(f.routing.table(), traffic, 0.08, plain);
  const sim::RunStats expected = bare.run();

  obs::Observer observer(
      {.metrics = true, .traceSampleEvery = 1, .profilePhases = true}, f.topo,
      &f.ct);
  sim::SimConfig observed = f.config();
  observed.observer = &observer;
  sim::WormholeNetwork traced(f.routing.table(), traffic, 0.08, observed);
  const sim::RunStats actual = traced.run();

  EXPECT_EQ(actual.cycles, expected.cycles);
  EXPECT_EQ(actual.packetsGenerated, expected.packetsGenerated);
  EXPECT_EQ(actual.packetsEjectedMeasured, expected.packetsEjectedMeasured);
  EXPECT_EQ(actual.flitsEjectedMeasured, expected.flitsEjectedMeasured);
  EXPECT_DOUBLE_EQ(actual.avgLatency, expected.avgLatency);
  EXPECT_DOUBLE_EQ(actual.p50Latency, expected.p50Latency);
  EXPECT_DOUBLE_EQ(actual.p99Latency, expected.p99Latency);
  EXPECT_DOUBLE_EQ(actual.avgQueueingDelay, expected.avgQueueingDelay);
  EXPECT_DOUBLE_EQ(actual.acceptedFlitsPerNodePerCycle,
                   expected.acceptedFlitsPerNodePerCycle);
  ASSERT_EQ(actual.channelUtilization.size(),
            expected.channelUtilization.size());
  for (std::size_t c = 0; c < actual.channelUtilization.size(); ++c) {
    EXPECT_DOUBLE_EQ(actual.channelUtilization[c],
                     expected.channelUtilization[c]);
  }

  // And the observer actually observed: phases timed, turns recorded, the
  // engine's channel-flit counts agree with telemetry's.
  EXPECT_EQ(observer.profiler()->cycles(), expected.cycles);
  EXPECT_GT(observer.metrics()->totalTurnsTaken(), 0u);
  const auto utilization =
      observer.metrics()->channelUtilization(observed.measureCycles);
  ASSERT_EQ(utilization.size(), expected.channelUtilization.size());
  for (std::size_t c = 0; c < utilization.size(); ++c) {
    EXPECT_DOUBLE_EQ(utilization[c], expected.channelUtilization[c]);
  }
}

TEST(PacketTracerTest, SampledTracesAreIdenticalAcrossPoolWidths) {
  // Sweeps fan simulations out over a thread pool; each sim carries its own
  // tracer, so the recorded traces must not depend on how many workers the
  // pool has. Run the same four seeded sims at pool width 1 and 4 and demand
  // byte-identical packet and event buffers per sim.
  const Fixture f;
  const sim::UniformTraffic traffic(f.topo.nodeCount());
  constexpr std::size_t kSims = 4;

  const auto runAll = [&](std::size_t workers) {
    std::vector<std::unique_ptr<obs::Observer>> observers(kSims);
    for (auto& o : observers) {
      o = std::make_unique<obs::Observer>(
          obs::ObsOptions{.traceSampleEvery = 2}, f.topo, &f.ct);
    }
    util::ThreadPool pool(workers);
    util::parallelFor(pool, kSims, [&](std::size_t i) {
      sim::SimConfig config = f.config();
      config.seed = 99 + i;
      config.observer = observers[i].get();
      sim::WormholeNetwork net(f.routing.table(), traffic, 0.05, config);
      net.run();
    });
    return observers;
  };

  const auto serial = runAll(1);
  const auto wide = runAll(4);
  for (std::size_t i = 0; i < kSims; ++i) {
    const obs::PacketTracer& a = *serial[i]->tracer();
    const obs::PacketTracer& b = *wide[i]->tracer();
    ASSERT_GT(a.packets().size(), 0u);
    ASSERT_EQ(a.packets().size(), b.packets().size());
    for (std::size_t p = 0; p < a.packets().size(); ++p) {
      EXPECT_EQ(a.packets()[p].packet, b.packets()[p].packet);
      EXPECT_EQ(a.packets()[p].src, b.packets()[p].src);
      EXPECT_EQ(a.packets()[p].dst, b.packets()[p].dst);
      EXPECT_EQ(a.packets()[p].genCycle, b.packets()[p].genCycle);
    }
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t e = 0; e < a.events().size(); ++e) {
      EXPECT_EQ(a.events()[e].packet, b.events()[e].packet);
      EXPECT_EQ(a.events()[e].cycle, b.events()[e].cycle);
      EXPECT_EQ(a.events()[e].kind, b.events()[e].kind);
      EXPECT_EQ(a.events()[e].fromDir, b.events()[e].fromDir);
      EXPECT_EQ(a.events()[e].toDir, b.events()[e].toDir);
      EXPECT_EQ(a.events()[e].node, b.events()[e].node);
      EXPECT_EQ(a.events()[e].channel, b.events()[e].channel);
      EXPECT_EQ(a.events()[e].value, b.events()[e].value);
    }
  }
}

TEST(ObserverTest, AttachRejectsWrongTopologySize) {
  const Fixture f;
  obs::Observer observer({.metrics = true}, f.topo, &f.ct);
  EXPECT_THROW(observer.attach(f.topo.nodeCount() + 1, f.topo.channelCount()),
               std::invalid_argument);
  EXPECT_THROW(observer.attach(f.topo.nodeCount(), f.topo.channelCount() + 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace downup
