// The zero-cost-when-disabled contract, asserted directly: with no
// observer attached, the engine's steady-state cycle loop performs zero
// heap allocations and the run leaves no files behind.
//
// Technique: the test binary overrides the global allocation functions
// with counting wrappers.  Counting is off by default (gtest and the
// engine's construction/warm-up phases allocate freely) and switched on
// only around the measured drain steps, after identical warm-up rounds
// have grown every internal vector to its steady-state capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <set>
#include <string>

#include "core/downup_routing.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace {

std::atomic<bool> g_countAllocations{false};
std::atomic<std::uint64_t> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_countAllocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace downup {
namespace {

std::set<std::string> directoryEntries() {
  std::set<std::string> entries;
  for (const auto& entry :
       std::filesystem::directory_iterator(std::filesystem::current_path())) {
    entries.insert(entry.path().filename().string());
  }
  return entries;
}

TEST(ZeroOverheadTest, DisabledObservabilitySteadyStateAllocatesNothing) {
  const std::set<std::string> before = directoryEntries();

  util::Rng topoRng(2024);
  const topo::Topology topo = topo::randomIrregular(24, {.maxPorts = 4},
                                                    topoRng);
  util::Rng treeRng(7);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  sim::SimConfig config;
  config.packetLengthFlits = 8;
  // The warm-up gate stays closed for the whole test, so no recorder that
  // could allocate (latency sketch, timeline) ever fires.
  config.warmupCycles = 1u << 30;
  config.measureCycles = 1u << 30;  // stepped manually
  config.adaptiveSelection = false;  // no RNG draws in the claim path
  const sim::UniformTraffic traffic(topo.nodeCount());
  sim::WormholeNetwork net(routing.table(), traffic, /*injectionRate=*/0.0,
                           config);

  // Identical inject-and-drain rounds; the first few grow every internal
  // buffer (arrivals slots, request lists, parked lists) to capacity.
  const auto runRound = [&topo, &net](bool counted) {
    for (topo::NodeId src = 0; src < topo.nodeCount(); ++src) {
      net.injectPacket(src, (src + 7) % topo.nodeCount());
    }
    const std::uint64_t target = net.packetsGenerated();
    g_countAllocations.store(counted, std::memory_order_relaxed);
    int steps = 0;
    while (net.packetsEjected() < target && steps++ < 100000) net.step();
    g_countAllocations.store(false, std::memory_order_relaxed);
    return target;
  };

  for (int round = 0; round < 4; ++round) runRound(/*counted=*/false);
  g_allocations.store(0, std::memory_order_relaxed);
  const std::uint64_t target = runRound(/*counted=*/true);

  EXPECT_EQ(net.packetsEjected(), target) << "drain round did not complete";
  EXPECT_EQ(g_allocations.load(), 0u)
      << "engine hot path allocated with observability disabled";

  // And the disabled path emitted no files.
  EXPECT_EQ(directoryEntries(), before);
}

}  // namespace
}  // namespace downup
