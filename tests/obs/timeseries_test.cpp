// TimeSeriesCollector: window bucketing, ring eviction, reconfiguration
// spans, merge semantics — and the engine-level contracts: attached
// collectors are bit-for-bit inert, window totals reconcile with the run
// totals, and the disabled path stays allocation-free (this binary
// overrides the global allocation functions; one override per binary, same
// pattern as test_obs's zero_overhead_test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/downup_routing.hpp"
#include "obs/observer.hpp"
#include "obs/timeseries.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"

namespace {

std::atomic<bool> g_countAllocations{false};
std::atomic<std::uint64_t> g_allocations{0};

void* countedAlloc(std::size_t size) {
  if (g_countAllocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace downup::obs {
namespace {

TimeSeriesCollector makeCollector(std::uint32_t windowCycles,
                                  std::uint32_t maxWindows,
                                  bool perChannel = false) {
  return TimeSeriesCollector(
      {.windowCycles = windowCycles, .maxWindows = maxWindows,
       .perChannel = perChannel},
      /*nodeCount=*/2, /*channelCount=*/2);
}

TEST(TimeSeriesTest, TickClosesWindowsOnBoundaries) {
  TimeSeriesCollector ts = makeCollector(10, 8);
  ts.recordGenerated();
  ts.recordGenerated();
  ts.recordInjectedFlit();
  ts.recordChannelFlit(0);
  ts.recordEjectedFlit();
  ts.recordDelivered(12.0);
  ts.recordBlocked(1, 7);
  ts.recordDrop();
  ts.recordDegradedCycle();
  for (std::uint64_t c = 0; c < 9; ++c) {
    ts.tick(c);
    EXPECT_EQ(ts.windowCount(), 0u);
  }
  ts.tick(9);  // cycle 9 is the last cycle of window [0, 10)
  ASSERT_EQ(ts.windowCount(), 1u);
  const auto& w = ts.window(0);
  EXPECT_EQ(w.startCycle, 0u);
  EXPECT_EQ(w.endCycle, 10u);
  EXPECT_EQ(w.generatedPackets, 2u);
  EXPECT_EQ(w.injectedFlits, 1u);
  EXPECT_EQ(w.channelFlits, 1u);
  EXPECT_EQ(w.ejectedFlits, 1u);
  EXPECT_EQ(w.ejectedPackets, 1u);
  EXPECT_EQ(w.blockedCycles, 7u);
  EXPECT_EQ(w.droppedPackets, 1u);
  EXPECT_EQ(w.degradedCycles, 1u);
  EXPECT_EQ(w.latency.count, 1u);
  EXPECT_DOUBLE_EQ(w.latency.mean, 12.0);

  // Accumulators restarted: the next window sees only its own events.
  ts.recordGenerated();
  ts.tick(19);
  ASSERT_EQ(ts.windowCount(), 2u);
  EXPECT_EQ(ts.window(1).startCycle, 10u);
  EXPECT_EQ(ts.window(1).generatedPackets, 1u);
  EXPECT_EQ(ts.window(1).droppedPackets, 0u);
}

TEST(TimeSeriesTest, FinishFlushesPartialWindowOnce) {
  TimeSeriesCollector ts = makeCollector(100, 4);
  ts.recordGenerated();
  ts.finish(37);
  ASSERT_EQ(ts.windowCount(), 1u);
  EXPECT_EQ(ts.window(0).endCycle, 37u);
  EXPECT_EQ(ts.window(0).generatedPackets, 1u);
  ts.finish(37);  // idempotent: the new open window spans zero cycles
  EXPECT_EQ(ts.windowCount(), 1u);
}

TEST(TimeSeriesTest, RingEvictsOldestWindows) {
  TimeSeriesCollector ts = makeCollector(10, 3);
  for (std::uint64_t w = 0; w < 5; ++w) {
    for (std::uint64_t i = 0; i <= w; ++i) ts.recordGenerated();
    ts.tick(w * 10 + 9);
  }
  EXPECT_EQ(ts.windowsClosed(), 5u);
  ASSERT_EQ(ts.windowCount(), 3u);
  EXPECT_EQ(ts.window(0).startCycle, 20u);
  EXPECT_EQ(ts.window(0).generatedPackets, 3u);
  EXPECT_EQ(ts.window(2).startCycle, 40u);
  EXPECT_EQ(ts.window(2).generatedPackets, 5u);
}

TEST(TimeSeriesTest, LevelAndPerChannelAttribution) {
  TimeSeriesCollector ts = makeCollector(10, 4, /*perChannel=*/true);
  const std::uint32_t nodeLevel[] = {0, 1};
  const std::uint32_t channelLevel[] = {0, 1};
  ts.setLevels(nodeLevel, channelLevel);
  ts.recordChannelFlit(0);
  ts.recordChannelFlit(1);
  ts.recordChannelFlit(1);
  ts.recordBlocked(1, 5);
  ts.tick(9);
  const auto& w = ts.window(0);
  ASSERT_EQ(w.levelFlits.size(), 2u);
  EXPECT_EQ(w.levelFlits[0], 1u);
  EXPECT_EQ(w.levelFlits[1], 2u);
  EXPECT_EQ(w.levelBlockedCycles[1], 5u);
  ASSERT_EQ(w.channelFlitsPerChannel.size(), 2u);
  EXPECT_EQ(w.channelFlitsPerChannel[0], 1u);
  EXPECT_EQ(w.channelFlitsPerChannel[1], 2u);
}

TEST(TimeSeriesTest, ReconfigSpansCompleteEveryPendingEvent) {
  TimeSeriesCollector ts = makeCollector(10, 4);
  ts.onFaultApplied(100);
  ts.onFaultApplied(150);
  ASSERT_EQ(ts.reconfigEvents().size(), 2u);
  EXPECT_TRUE(ts.reconfigEvents()[0].pending());
  ts.onReconfigComplete(220, /*incremental=*/true, /*destinationsRebuilt=*/5,
                        /*unreachablePairs=*/1);
  for (const auto& e : ts.reconfigEvents()) {
    EXPECT_FALSE(e.pending());
    EXPECT_EQ(e.swapCycle, 220u);
    EXPECT_TRUE(e.incremental);
    EXPECT_EQ(e.destinationsRebuilt, 5u);
    EXPECT_EQ(e.unreachablePairs, 1u);
  }
  ts.onFaultApplied(300);  // a later fault opens a fresh pending span
  EXPECT_TRUE(ts.reconfigEvents()[2].pending());
  EXPECT_FALSE(ts.reconfigEvents()[0].pending());
}

TEST(TimeSeriesTest, MergeSumsMatchingWindowsExactly) {
  TimeSeriesCollector a = makeCollector(10, 4);
  TimeSeriesCollector b = makeCollector(10, 4);
  a.recordGenerated();
  a.recordDelivered(10.0);
  a.tick(9);
  b.recordGenerated();
  b.recordGenerated();
  b.recordDelivered(30.0);
  b.tick(9);
  b.onFaultApplied(5);
  a.mergeFrom(b);
  ASSERT_EQ(a.windowCount(), 1u);
  EXPECT_EQ(a.window(0).generatedPackets, 3u);
  EXPECT_EQ(a.window(0).latency.count, 2u);
  EXPECT_DOUBLE_EQ(a.window(0).latency.mean, 20.0);
  EXPECT_DOUBLE_EQ(a.window(0).latency.min, 10.0);
  EXPECT_DOUBLE_EQ(a.window(0).latency.max, 30.0);
  ASSERT_EQ(a.reconfigEvents().size(), 1u);
  EXPECT_EQ(a.reconfigEvents()[0].faultCycle, 5u);
}

TEST(TimeSeriesTest, MergeIntoEmptyCopiesAndMismatchThrows) {
  TimeSeriesCollector a = makeCollector(10, 4);
  TimeSeriesCollector b = makeCollector(10, 4);
  b.recordGenerated();
  b.tick(9);
  a.mergeFrom(b);
  ASSERT_EQ(a.windowCount(), 1u);
  EXPECT_EQ(a.window(0).generatedPackets, 1u);

  // Different window boundaries: not the same run structure.
  TimeSeriesCollector c = makeCollector(10, 4);
  c.recordGenerated();
  c.tick(19);  // first window closes as [0, 20) after a missed boundary
  EXPECT_THROW(a.mergeFrom(c), std::invalid_argument);

  // Different window length: dimension mismatch.
  TimeSeriesCollector d = makeCollector(20, 4);
  EXPECT_THROW(a.mergeFrom(d), std::invalid_argument);
}

TEST(TimeSeriesTest, ResetClearsWindowsEventsAndAccumulators) {
  TimeSeriesCollector ts = makeCollector(10, 4);
  ts.recordGenerated();
  ts.tick(9);
  ts.recordGenerated();
  ts.onFaultApplied(12);
  ts.reset();
  EXPECT_EQ(ts.windowCount(), 0u);
  EXPECT_EQ(ts.windowsClosed(), 0u);
  EXPECT_TRUE(ts.reconfigEvents().empty());
  ts.tick(9);  // the window restarts at cycle 0 with empty accumulators
  ASSERT_EQ(ts.windowCount(), 1u);
  EXPECT_EQ(ts.window(0).generatedPackets, 0u);
}

// --- engine-level contracts ---

// The routing table references the topology it was built from, so the
// members are constructed in place, in dependency order (the trace_test
// fixture pattern) — never moved.
struct Scenario {
  Scenario()
      : topo(makeTopology()),
        ct(makeTree(topo)),
        routing(core::buildDownUp(topo, ct)) {}

  static topo::Topology makeTopology() {
    util::Rng rng(2024);
    return topo::randomIrregular(24, {.maxPorts = 4}, rng);
  }
  static tree::CoordinatedTree makeTree(const topo::Topology& topo) {
    util::Rng rng(7);
    return tree::CoordinatedTree::build(topo,
                                        tree::TreePolicy::kM1SmallestFirst, rng);
  }

  topo::Topology topo;
  tree::CoordinatedTree ct;
  routing::Routing routing;
};

sim::SimConfig smallConfig() {
  sim::SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 400;
  config.measureCycles = 2000;
  config.seed = 11;
  return config;
}

TEST(TimeSeriesEngineTest, AttachedCollectorsAreBitForBitInert) {
  const Scenario s;
  const sim::UniformTraffic traffic(s.topo.nodeCount());
  const sim::SimConfig config = smallConfig();

  const sim::RunStats bare =
      sim::simulate(s.routing.table(), traffic, 0.05, config);

  Observer observer({.metrics = true,
                     .timeseriesWindowCycles = 64,
                     .timeseriesPerChannel = true,
                     .waitForSamplePeriod = 16},
                    s.topo, &s.ct);
  sim::SimConfig observed = config;
  observed.observer = &observer;
  const sim::RunStats instrumented =
      sim::simulate(s.routing.table(), traffic, 0.05, observed);

  EXPECT_EQ(bare.packetsGenerated, instrumented.packetsGenerated);
  EXPECT_EQ(bare.packetsEjectedMeasured, instrumented.packetsEjectedMeasured);
  EXPECT_EQ(bare.flitsEjectedMeasured, instrumented.flitsEjectedMeasured);
  EXPECT_DOUBLE_EQ(bare.avgLatency, instrumented.avgLatency);
  EXPECT_DOUBLE_EQ(bare.p99Latency, instrumented.p99Latency);
  EXPECT_DOUBLE_EQ(bare.acceptedFlitsPerNodePerCycle,
                   instrumented.acceptedFlitsPerNodePerCycle);
  ASSERT_EQ(bare.channelUtilization.size(),
            instrumented.channelUtilization.size());
  for (std::size_t c = 0; c < bare.channelUtilization.size(); ++c) {
    EXPECT_DOUBLE_EQ(bare.channelUtilization[c],
                     instrumented.channelUtilization[c]);
  }
}

TEST(TimeSeriesEngineTest, WindowTotalsReconcileWithRunTotals) {
  const Scenario s;
  const sim::UniformTraffic traffic(s.topo.nodeCount());
  sim::SimConfig config = smallConfig();

  Observer observer({.timeseriesWindowCycles = 64}, s.topo, &s.ct);
  config.observer = &observer;
  sim::WormholeNetwork net(s.routing.table(), traffic, 0.05, config);
  net.run();

  TimeSeriesCollector& ts = *observer.timeseries();
  ts.finish(net.now());
  ASSERT_GT(ts.windowCount(), 0u);
  std::uint64_t generated = 0;
  std::uint64_t ejectedPackets = 0;
  std::uint64_t prevEnd = 0;
  for (std::size_t i = 0; i < ts.windowCount(); ++i) {
    const auto& w = ts.window(i);
    if (i > 0) {
      EXPECT_EQ(w.startCycle, prevEnd);  // contiguous coverage
    }
    prevEnd = w.endCycle;
    generated += w.generatedPackets;
    ejectedPackets += w.ejectedPackets;
  }
  // The flight recorder is not warm-up gated: its totals are the raw run
  // totals, not the measured-window aggregates.
  EXPECT_EQ(generated, net.packetsGenerated());
  EXPECT_EQ(ejectedPackets, net.packetsEjected());
  EXPECT_EQ(prevEnd, net.now());
}

TEST(TimeSeriesEngineTest, DisabledObserverSteadyStateAllocatesNothing) {
  const Scenario s;
  sim::SimConfig config;
  config.packetLengthFlits = 8;
  // The warm-up gate stays closed so no warm-up-gated recorder could fire;
  // the attached-but-empty observer must keep every hook a null check.
  config.warmupCycles = 1u << 30;
  config.measureCycles = 1u << 30;  // stepped manually
  config.adaptiveSelection = false;
  Observer observer({}, s.topo, &s.ct);  // all collectors disabled
  config.observer = &observer;
  const sim::UniformTraffic traffic(s.topo.nodeCount());
  sim::WormholeNetwork net(s.routing.table(), traffic, /*injectionRate=*/0.0,
                           config);

  const auto runRound = [&s, &net](bool counted) {
    for (topo::NodeId src = 0; src < s.topo.nodeCount(); ++src) {
      net.injectPacket(src, (src + 7) % s.topo.nodeCount());
    }
    const std::uint64_t target = net.packetsGenerated();
    g_countAllocations.store(counted, std::memory_order_relaxed);
    int steps = 0;
    while (net.packetsEjected() < target && steps++ < 100000) net.step();
    g_countAllocations.store(false, std::memory_order_relaxed);
    return target;
  };

  for (int round = 0; round < 4; ++round) runRound(/*counted=*/false);
  g_allocations.store(0, std::memory_order_relaxed);
  const std::uint64_t target = runRound(/*counted=*/true);

  EXPECT_EQ(net.packetsEjected(), target) << "drain round did not complete";
  EXPECT_EQ(g_allocations.load(), 0u)
      << "engine hot path allocated with a disabled observer attached";
}

}  // namespace
}  // namespace downup::obs
