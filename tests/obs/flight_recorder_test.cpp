// Flight recorder: ring semantics (wrap keeps the newest events, sequence
// order survives), the seqlock dump is safe and consistent under concurrent
// writers, and the JSONL dump names every event kind.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace downup::obs {
namespace {

TEST(FlightRecorderTest, RecordsInSequenceWithPayload) {
  FlightRecorder rec(16);
  rec.record(FabricEventKind::kTransitionPosted, /*cycle=*/100, /*a=*/0,
             /*b=*/7, /*c=*/1);
  rec.record(FabricEventKind::kRebuildStarted, 0, /*incremental=*/1,
             /*batch=*/3);
  rec.record(FabricEventKind::kRebuildFinished, 0, /*epoch=*/2,
             /*rebuilt=*/24, /*ok=*/1);
  rec.record(FabricEventKind::kPublish, 0, /*epoch=*/2, /*retired=*/1);

  std::vector<FabricEvent> events;
  ASSERT_EQ(rec.dump(events), 4u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, FabricEventKind::kTransitionPosted);
  EXPECT_EQ(events[0].cycle, 100u);
  EXPECT_EQ(events[0].b, 7u);
  EXPECT_EQ(events[0].c, 1u);
  EXPECT_EQ(events[1].kind, FabricEventKind::kRebuildStarted);
  EXPECT_EQ(events[2].kind, FabricEventKind::kRebuildFinished);
  EXPECT_EQ(events[2].b, 24u);
  EXPECT_EQ(events[3].kind, FabricEventKind::kPublish);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_LE(events[i - 1].timeNs, events[i].timeNs);
  }
}

TEST(FlightRecorderTest, WrapKeepsTheMostRecentEvents) {
  FlightRecorder rec(4);  // already a power of two
  EXPECT_EQ(rec.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.record(FabricEventKind::kPublish, 0, /*epoch=*/i);
  }
  EXPECT_EQ(rec.recorded(), 10u);

  std::vector<FabricEvent> events;
  ASSERT_EQ(rec.dump(events), 4u);
  // Oldest surviving event is seq 6; the dump is the trailing window.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].a, 6u + i);  // epoch payload rode along
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(100);
  EXPECT_EQ(rec.capacity(), 128u);
}

TEST(FlightRecorderTest, ConcurrentWritersAndDumpersStayConsistent) {
  // Exercised under TSan in CI: writers hammer the ring while a reader
  // dumps mid-burst.  Every dumped event must be internally consistent
  // (payload a == seq, the writer's invariant) and strictly ordered.
  FlightRecorder rec(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // Payload mirrors the ticket so a torn cross-generation copy is
        // detectable below; writers cannot know their ticket, so mirror
        // via a second dump-side invariant instead: a==b always.
        rec.record(FabricEventKind::kReclaim, i, i, i);
      }
    });
  }
  std::vector<FabricEvent> events;
  for (int pass = 0; pass < 50; ++pass) {
    rec.dump(events);
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].a, events[i].b);  // no mixed-generation payload
      if (i > 0) EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  // Every slot has published some generation by now (20000 records over 64
  // slots); which generation each holds depends on writer interleaving, so
  // only order and bounds are guaranteed.
  ASSERT_EQ(rec.dump(events), rec.capacity());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_LT(events[i].seq, kWriters * kPerWriter);
    if (i > 0) EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(FlightRecorderTest, JsonlNamesKindsAndAnomalies) {
  FlightRecorder rec(8);
  rec.record(FabricEventKind::kWindowOpened, 0, 2);
  rec.record(FabricEventKind::kWindowExtended, 0, 1);
  rec.record(FabricEventKind::kRebuildSkipped, 0, 2);
  rec.record(FabricEventKind::kAnomaly, 0,
             static_cast<std::uint64_t>(AnomalyCode::kWaitForHardCycle), 3);

  std::ostringstream out;
  rec.writeJsonl(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"schema\":\"obs_flight/1\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"window_opened\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"window_extended\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"rebuild_skipped\""), std::string::npos);
  EXPECT_NE(text.find("\"anomaly\":\"waitfor_hard_cycle\""),
            std::string::npos);
  EXPECT_NE(text.find("\"recorded\":4"), std::string::npos);
}

TEST(FlightRecorderTest, EveryKindHasAName) {
  for (std::uint8_t k = 0;
       k <= static_cast<std::uint8_t>(FabricEventKind::kAnomaly); ++k) {
    EXPECT_STRNE(toString(static_cast<FabricEventKind>(k)), "?");
  }
  EXPECT_STRNE(toString(AnomalyCode::kUnverifiedRouting), "?");
  EXPECT_STRNE(toString(AnomalyCode::kWaitForHardCycle), "?");
}

}  // namespace
}  // namespace downup::obs
