#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"

namespace downup::topo {
namespace {

TEST(Topology, EmptyHasNoLinks) {
  Topology topo(4);
  EXPECT_EQ(topo.nodeCount(), 4u);
  EXPECT_EQ(topo.linkCount(), 0u);
  EXPECT_EQ(topo.channelCount(), 0u);
  EXPECT_EQ(topo.degree(0), 0u);
  EXPECT_TRUE(topo.neighbors(0).empty());
}

TEST(Topology, AddLinkCreatesBothChannels) {
  Topology topo(3);
  const LinkId l = topo.addLink(0, 2);
  EXPECT_EQ(topo.linkCount(), 1u);
  EXPECT_EQ(topo.channelCount(), 2u);

  const ChannelId forward = topo.channel(0, 2);
  const ChannelId backward = topo.channel(2, 0);
  ASSERT_NE(forward, kInvalidChannel);
  ASSERT_NE(backward, kInvalidChannel);
  EXPECT_EQ(Topology::reverseChannel(forward), backward);
  EXPECT_EQ(Topology::reverseChannel(backward), forward);
  EXPECT_EQ(Topology::linkOf(forward), l);
  EXPECT_EQ(topo.channelSrc(forward), 0u);
  EXPECT_EQ(topo.channelDst(forward), 2u);
  EXPECT_EQ(topo.channelSrc(backward), 2u);
  EXPECT_EQ(topo.channelDst(backward), 0u);
}

TEST(Topology, NeighborsSortedAscending) {
  Topology topo(5);
  topo.addLink(2, 4);
  topo.addLink(2, 0);
  topo.addLink(2, 3);
  topo.addLink(2, 1);
  const auto neighbors = topo.neighbors(2);
  ASSERT_EQ(neighbors.size(), 4u);
  for (std::size_t i = 0; i + 1 < neighbors.size(); ++i) {
    EXPECT_LT(neighbors[i], neighbors[i + 1]);
  }
}

TEST(Topology, OutputChannelsParallelToNeighbors) {
  Topology topo(4);
  topo.addLink(1, 3);
  topo.addLink(1, 0);
  topo.addLink(1, 2);
  const auto neighbors = topo.neighbors(1);
  const auto channels = topo.outputChannels(1);
  ASSERT_EQ(neighbors.size(), channels.size());
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    EXPECT_EQ(topo.channelSrc(channels[i]), 1u);
    EXPECT_EQ(topo.channelDst(channels[i]), neighbors[i]);
    EXPECT_EQ(topo.channel(1, neighbors[i]), channels[i]);
  }
}

TEST(Topology, HasLinkIsSymmetric) {
  Topology topo(3);
  topo.addLink(0, 1);
  EXPECT_TRUE(topo.hasLink(0, 1));
  EXPECT_TRUE(topo.hasLink(1, 0));
  EXPECT_FALSE(topo.hasLink(0, 2));
  EXPECT_FALSE(topo.hasLink(2, 1));
}

TEST(Topology, RejectsSelfLoop) {
  Topology topo(3);
  EXPECT_THROW(topo.addLink(1, 1), std::invalid_argument);
}

TEST(Topology, RejectsDuplicateLink) {
  Topology topo(3);
  topo.addLink(0, 1);
  EXPECT_THROW(topo.addLink(0, 1), std::invalid_argument);
  EXPECT_THROW(topo.addLink(1, 0), std::invalid_argument);
}

TEST(Topology, RejectsOutOfRangeEndpoint) {
  Topology topo(3);
  EXPECT_THROW(topo.addLink(0, 3), std::invalid_argument);
  EXPECT_THROW(topo.addLink(7, 1), std::invalid_argument);
}

TEST(Topology, ChannelForMissingLinkIsInvalid) {
  Topology topo(3);
  topo.addLink(0, 1);
  EXPECT_EQ(topo.channel(0, 2), kInvalidChannel);
  EXPECT_EQ(topo.channel(9, 0), kInvalidChannel);
}

TEST(Topology, LinkEndsMatchInsertion) {
  Topology topo(4);
  const LinkId l = topo.addLink(3, 1);
  const auto [a, b] = topo.linkEnds(l);
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 1u);
}

}  // namespace
}  // namespace downup::topo
