#include <gtest/gtest.h>

#include <sstream>

#include "topology/generate.hpp"
#include "topology/properties.hpp"
#include "tree/graphviz.hpp"
#include "util/rng.hpp"

namespace downup::topo {
namespace {

TEST(RandomRegular, ProducesConnectedRegularGraphs) {
  util::Rng rng(1);
  for (const auto& [n, d] : {std::pair{10u, 3u}, {16u, 4u}, {24u, 3u},
                             {32u, 6u}, {64u, 4u}}) {
    const Topology topo = randomRegular(n, d, rng);
    EXPECT_EQ(topo.nodeCount(), n);
    EXPECT_EQ(topo.linkCount(), n * d / 2);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(topo.degree(v), d);
    EXPECT_TRUE(isConnected(topo));
  }
}

TEST(RandomRegular, RejectsInfeasibleParameters) {
  util::Rng rng(1);
  EXPECT_THROW(randomRegular(5, 3, rng), std::invalid_argument);  // odd n*d
  EXPECT_THROW(randomRegular(4, 4, rng), std::invalid_argument);  // d >= n
  EXPECT_THROW(randomRegular(4, 0, rng), std::invalid_argument);
}

TEST(Petersen, HasTheKnownStructure) {
  const Topology topo = petersen();
  EXPECT_EQ(topo.nodeCount(), 10u);
  EXPECT_EQ(topo.linkCount(), 15u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(topo.degree(v), 3u);
  EXPECT_EQ(diameter(topo), 2u);
  EXPECT_TRUE(bridges(topo).empty());
  EXPECT_TRUE(articulationPoints(topo).empty());
}

TEST(Dumbbell, BridgeIsDetected) {
  const Topology topo = dumbbell(4);
  EXPECT_EQ(topo.nodeCount(), 8u);
  EXPECT_TRUE(isConnected(topo));
  const auto bridgeLinks = bridges(topo);
  ASSERT_EQ(bridgeLinks.size(), 1u);
  const auto [a, b] = topo.linkEnds(bridgeLinks[0]);
  EXPECT_TRUE((a == 0 && b == 4) || (a == 4 && b == 0));
  const auto points = articulationPoints(topo);
  EXPECT_EQ(points, (std::vector<NodeId>{0, 4}));
}

TEST(Bridges, EveryLinkOfATreeIsABridge) {
  const Topology topo = star(6);
  EXPECT_EQ(bridges(topo).size(), topo.linkCount());
  const auto points = articulationPoints(topo);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], 0u);
}

TEST(Bridges, RingHasNone) {
  EXPECT_TRUE(bridges(ring(7)).empty());
  EXPECT_TRUE(articulationPoints(ring(7)).empty());
}

TEST(Bridges, LineInteriorNodesAreArticulation) {
  const Topology topo = line(5);
  EXPECT_EQ(bridges(topo).size(), 4u);
  EXPECT_EQ(articulationPoints(topo), (std::vector<NodeId>{1, 2, 3}));
}

TEST(Bridges, MatchBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed);
    const Topology topo = randomIrregular(18, {.maxPorts = 3}, rng);
    const auto fast = bridges(topo);
    // Brute force: a link is a bridge iff removing it disconnects.
    std::vector<LinkId> slow;
    for (LinkId skip = 0; skip < topo.linkCount(); ++skip) {
      Topology reduced(topo.nodeCount());
      for (LinkId l = 0; l < topo.linkCount(); ++l) {
        if (l == skip) continue;
        const auto [a, b] = topo.linkEnds(l);
        reduced.addLink(a, b);
      }
      if (!isConnected(reduced)) slow.push_back(skip);
    }
    EXPECT_EQ(fast, slow) << "seed " << seed;
  }
}

TEST(Graphviz, PlainExportMentionsEveryLink) {
  const Topology topo = ring(4);
  std::ostringstream out;
  tree::exportGraphviz(topo, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("graph downup {"), std::string::npos);
  EXPECT_NE(text.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(text.find("n3 -- n0"), std::string::npos);
}

TEST(Graphviz, AnnotatedExportMarksCrossLinks) {
  const Topology topo = paperFigure1();
  util::Rng rng(1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, rng);
  std::ostringstream out;
  tree::exportGraphviz(topo, ct, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("style=dashed"), std::string::npos);
  EXPECT_NE(text.find("style=bold"), std::string::npos);
  EXPECT_NE(text.find("(0,0)"), std::string::npos);  // root coordinates
}

}  // namespace
}  // namespace downup::topo
