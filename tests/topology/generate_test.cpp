#include "topology/generate.hpp"

#include <gtest/gtest.h>

#include "topology/properties.hpp"

namespace downup::topo {
namespace {

struct IrregularCase {
  NodeId nodes;
  unsigned ports;
  std::uint64_t seed;
};

class RandomIrregularTest : public ::testing::TestWithParam<IrregularCase> {};

TEST_P(RandomIrregularTest, ConnectedAndDegreeCapped) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = randomIrregular(nodes, {.maxPorts = ports}, rng);
  EXPECT_EQ(topo.nodeCount(), nodes);
  EXPECT_TRUE(isConnected(topo));
  for (NodeId v = 0; v < nodes; ++v) EXPECT_LE(topo.degree(v), ports);
}

TEST_P(RandomIrregularTest, SaturatesFreePorts) {
  // After generation no two non-adjacent switches may both have free ports.
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = randomIrregular(nodes, {.maxPorts = ports}, rng);
  std::vector<NodeId> open;
  for (NodeId v = 0; v < nodes; ++v) {
    if (topo.degree(v) < ports) open.push_back(v);
  }
  for (std::size_t i = 0; i < open.size(); ++i) {
    for (std::size_t j = i + 1; j < open.size(); ++j) {
      EXPECT_TRUE(topo.hasLink(open[i], open[j]))
          << open[i] << " and " << open[j] << " both have free ports";
    }
  }
}

TEST_P(RandomIrregularTest, DeterministicForSeed) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng1(seed);
  util::Rng rng2(seed);
  const Topology a = randomIrregular(nodes, {.maxPorts = ports}, rng1);
  const Topology b = randomIrregular(nodes, {.maxPorts = ports}, rng2);
  ASSERT_EQ(a.linkCount(), b.linkCount());
  for (LinkId l = 0; l < a.linkCount(); ++l) {
    EXPECT_EQ(a.linkEnds(l), b.linkEnds(l));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomIrregularTest,
    ::testing::Values(IrregularCase{8, 3, 1}, IrregularCase{16, 4, 2},
                      IrregularCase{32, 4, 3}, IrregularCase{32, 8, 4},
                      IrregularCase{64, 4, 5}, IrregularCase{64, 8, 6},
                      IrregularCase{128, 4, 7}, IrregularCase{128, 8, 8},
                      IrregularCase{5, 2, 9}, IrregularCase{100, 6, 10}));

TEST(RandomIrregular, TargetLinksRespected) {
  util::Rng rng(11);
  const Topology topo =
      randomIrregular(32, {.maxPorts = 8, .targetLinks = 40}, rng);
  EXPECT_EQ(topo.linkCount(), 40u);
  EXPECT_TRUE(isConnected(topo));
}

TEST(RandomIrregular, RejectsBadArguments) {
  util::Rng rng(1);
  EXPECT_THROW(randomIrregular(1, {.maxPorts = 4}, rng), std::invalid_argument);
  EXPECT_THROW(randomIrregular(8, {.maxPorts = 1}, rng), std::invalid_argument);
}

TEST(RegularTopologies, Ring) {
  const Topology topo = ring(6);
  EXPECT_EQ(topo.linkCount(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(topo.degree(v), 2u);
  EXPECT_EQ(diameter(topo), 3u);
  EXPECT_THROW(ring(2), std::invalid_argument);
}

TEST(RegularTopologies, Line) {
  const Topology topo = line(5);
  EXPECT_EQ(topo.linkCount(), 4u);
  EXPECT_EQ(topo.degree(0), 1u);
  EXPECT_EQ(topo.degree(2), 2u);
  EXPECT_EQ(diameter(topo), 4u);
}

TEST(RegularTopologies, Mesh) {
  const Topology topo = mesh(4, 3);
  EXPECT_EQ(topo.nodeCount(), 12u);
  EXPECT_EQ(topo.linkCount(), 3u * 3 + 4u * 2);  // horizontal + vertical
  EXPECT_EQ(diameter(topo), 5u);
  EXPECT_TRUE(topo.hasLink(0, 1));
  EXPECT_TRUE(topo.hasLink(0, 4));
  EXPECT_FALSE(topo.hasLink(3, 4));  // no wraparound
}

TEST(RegularTopologies, Torus) {
  const Topology topo = torus(4, 4);
  EXPECT_EQ(topo.nodeCount(), 16u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(topo.degree(v), 4u);
  EXPECT_EQ(diameter(topo), 4u);
  EXPECT_TRUE(topo.hasLink(0, 3));   // row wrap
  EXPECT_TRUE(topo.hasLink(0, 12));  // column wrap
}

TEST(RegularTopologies, TorusOfWidthTwoSkipsDuplicateWrap) {
  const Topology topo = torus(2, 3);
  // Width-2 wrap links would duplicate mesh links; they must be skipped.
  EXPECT_EQ(componentCount(topo), 1u);
  for (NodeId v = 0; v < topo.nodeCount(); ++v) EXPECT_LE(topo.degree(v), 4u);
}

TEST(RegularTopologies, Hypercube) {
  const Topology topo = hypercube(4);
  EXPECT_EQ(topo.nodeCount(), 16u);
  EXPECT_EQ(topo.linkCount(), 32u);
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(topo.degree(v), 4u);
  EXPECT_EQ(diameter(topo), 4u);
}

TEST(RegularTopologies, StarAndComplete) {
  const Topology s = star(7);
  EXPECT_EQ(s.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(s.degree(v), 1u);

  const Topology k = complete(5);
  EXPECT_EQ(k.linkCount(), 10u);
  EXPECT_EQ(diameter(k), 1u);
}

TEST(PaperFigure1, MatchesTheDescribedNetwork) {
  const Topology topo = paperFigure1();
  EXPECT_EQ(topo.nodeCount(), 5u);
  EXPECT_EQ(topo.linkCount(), 6u);
  // v1..v5 are ids 0..4.
  EXPECT_TRUE(topo.hasLink(0, 4));  // v1-v5
  EXPECT_TRUE(topo.hasLink(4, 1));  // v5-v2
  EXPECT_TRUE(topo.hasLink(0, 2));  // v1-v3
  EXPECT_TRUE(topo.hasLink(0, 3));  // v1-v4
  EXPECT_TRUE(topo.hasLink(2, 4));  // v3-v5
  EXPECT_TRUE(topo.hasLink(1, 3));  // v2-v4
  EXPECT_TRUE(isConnected(topo));
}

}  // namespace
}  // namespace downup::topo
