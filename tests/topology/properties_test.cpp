#include "topology/properties.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::topo {
namespace {

TEST(BfsDistances, LineDistancesAreExact) {
  const Topology topo = line(5);
  const auto dist = bfsDistances(topo, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, DisconnectedMarksUnreachable) {
  Topology topo(4);
  topo.addLink(0, 1);
  topo.addLink(2, 3);
  const auto dist = bfsDistances(topo, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Connectivity, CountsComponents) {
  Topology topo(6);
  topo.addLink(0, 1);
  topo.addLink(1, 2);
  topo.addLink(3, 4);
  EXPECT_EQ(componentCount(topo), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_FALSE(isConnected(topo));
  topo.addLink(2, 3);
  topo.addLink(4, 5);
  EXPECT_TRUE(isConnected(topo));
}

TEST(Diameter, ThrowsOnDisconnected) {
  Topology topo(3);
  topo.addLink(0, 1);
  EXPECT_THROW(diameter(topo), std::runtime_error);
}

TEST(AverageDistance, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(averageDistance(complete(6)), 1.0);
}

TEST(AverageDistance, RingOfFive) {
  // Distances from any node in a 5-ring: 1,1,2,2 -> mean 1.5.
  EXPECT_DOUBLE_EQ(averageDistance(ring(5)), 1.5);
}

TEST(DegreeHistogram, Star) {
  const auto histogram = degreeHistogram(star(5));
  ASSERT_EQ(histogram.size(), 5u);
  EXPECT_EQ(histogram[1], 4u);
  EXPECT_EQ(histogram[4], 1u);
  EXPECT_EQ(histogram[0], 0u);
}

TEST(AverageDegree, RingIsTwo) {
  EXPECT_DOUBLE_EQ(averageDegree(ring(7)), 2.0);
  EXPECT_DOUBLE_EQ(averageDegree(Topology(3)), 0.0);
}

TEST(Properties, RandomIrregularInvariants) {
  util::Rng rng(23);
  const Topology topo = randomIrregular(40, {.maxPorts = 4}, rng);
  EXPECT_TRUE(isConnected(topo));
  EXPECT_LE(averageDegree(topo), 4.0);
  EXPECT_GE(diameter(topo), 2u);
  EXPECT_GE(averageDistance(topo), 1.0);
  EXPECT_LE(averageDistance(topo), static_cast<double>(diameter(topo)));
}

}  // namespace
}  // namespace downup::topo
