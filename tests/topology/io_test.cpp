#include "topology/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::topo {
namespace {

TEST(TopologyIo, RoundTripPreservesLinks) {
  util::Rng rng(17);
  const Topology original = randomIrregular(24, {.maxPorts = 4}, rng);
  std::stringstream buffer;
  save(original, buffer);
  const Topology restored = load(buffer);
  ASSERT_EQ(restored.nodeCount(), original.nodeCount());
  ASSERT_EQ(restored.linkCount(), original.linkCount());
  for (LinkId l = 0; l < original.linkCount(); ++l) {
    EXPECT_EQ(restored.linkEnds(l), original.linkEnds(l));
  }
}

TEST(TopologyIo, AcceptsCommentsAndBlankLines) {
  std::istringstream in(
      "downup-topo v1\n"
      "# a comment\n"
      "\n"
      "nodes 3\n"
      "link 0 1\n"
      "# another\n"
      "link 1 2\n");
  const Topology topo = load(in);
  EXPECT_EQ(topo.nodeCount(), 3u);
  EXPECT_EQ(topo.linkCount(), 2u);
}

TEST(TopologyIo, RejectsMissingHeader) {
  std::istringstream in("nodes 3\nlink 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsLinkBeforeNodes) {
  std::istringstream in("downup-topo v1\nlink 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsDuplicateLinkWithLineNumber) {
  std::istringstream in(
      "downup-topo v1\nnodes 3\nlink 0 1\nlink 1 0\n");
  try {
    load(in);
    FAIL() << "expected failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(TopologyIo, RejectsUnknownKeyword) {
  std::istringstream in("downup-topo v1\nnodes 3\nedge 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, FileRoundTrip) {
  const Topology original = ring(8);
  const std::string path = ::testing::TempDir() + "/downup_io_test.topo";
  saveFile(original, path);
  const Topology restored = loadFile(path);
  EXPECT_EQ(restored.linkCount(), original.linkCount());
  EXPECT_THROW(loadFile("/nonexistent/nowhere.topo"), std::runtime_error);
}

}  // namespace
}  // namespace downup::topo
