#include "topology/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::topo {
namespace {

TEST(TopologyIo, RoundTripPreservesLinks) {
  util::Rng rng(17);
  const Topology original = randomIrregular(24, {.maxPorts = 4}, rng);
  std::stringstream buffer;
  save(original, buffer);
  const Topology restored = load(buffer);
  ASSERT_EQ(restored.nodeCount(), original.nodeCount());
  ASSERT_EQ(restored.linkCount(), original.linkCount());
  for (LinkId l = 0; l < original.linkCount(); ++l) {
    EXPECT_EQ(restored.linkEnds(l), original.linkEnds(l));
  }
}

TEST(TopologyIo, AcceptsCommentsAndBlankLines) {
  std::istringstream in(
      "downup-topo v1\n"
      "# a comment\n"
      "\n"
      "nodes 3\n"
      "link 0 1\n"
      "# another\n"
      "link 1 2\n");
  const Topology topo = load(in);
  EXPECT_EQ(topo.nodeCount(), 3u);
  EXPECT_EQ(topo.linkCount(), 2u);
}

TEST(TopologyIo, RejectsMissingHeader) {
  std::istringstream in("nodes 3\nlink 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsLinkBeforeNodes) {
  std::istringstream in("downup-topo v1\nlink 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsDuplicateLinkWithLineNumber) {
  std::istringstream in(
      "downup-topo v1\nnodes 3\nlink 0 1\nlink 1 0\n");
  try {
    load(in);
    FAIL() << "expected failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":4:"), std::string::npos)
        << e.what();
  }
}

TEST(TopologyIo, RejectsUnknownKeyword) {
  std::istringstream in("downup-topo v1\nnodes 3\nedge 0 1\n");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(load(in), std::runtime_error);
}

TEST(TopologyIo, RejectsNegativeAndMalformedNumbers) {
  // istream >> unsigned silently wraps "-1"; the strict parser must not.
  std::istringstream negative("downup-topo v1\nnodes 4\nlink -1 2\n");
  EXPECT_THROW(load(negative), std::runtime_error);
  std::istringstream hex("downup-topo v1\nnodes 4\nlink 0x1 2\n");
  EXPECT_THROW(load(hex), std::runtime_error);
  std::istringstream negativeNodes("downup-topo v1\nnodes -4\n");
  EXPECT_THROW(load(negativeNodes), std::runtime_error);
}

TEST(TopologyIo, RejectsTrailingGarbageButAllowsTrailingComment) {
  std::istringstream garbage("downup-topo v1\nnodes 3\nlink 0 1 2\n");
  EXPECT_THROW(load(garbage), std::runtime_error);
  std::istringstream comment("downup-topo v1\nnodes 3\nlink 0 1 # fine\n");
  EXPECT_NO_THROW(load(comment));
}

TEST(TopologyIo, DetectsTruncationAgainstDeclaredLinkCount) {
  std::istringstream in(
      "downup-topo v1\nnodes 4\nlinks 3\nlink 0 1\nlink 1 2\n");
  try {
    load(in, "cut.topo");
    FAIL() << "expected failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("cut.topo"), std::string::npos) << what;
  }
}

TEST(TopologyIo, SaveDeclaresLinkCountForTruncationDetection) {
  std::stringstream buffer;
  save(ring(5), buffer);
  EXPECT_NE(buffer.str().find("links 5"), std::string::npos);
  EXPECT_NO_THROW(load(buffer));
}

// Every corpus file named after a defect must be rejected with an error that
// names the file and a line number; the *_ok files must load.
TEST(TopologyIo, NegativeCorpusIsRejectedWithFileAndLine) {
  const std::string dir = DOWNUP_TOPOLOGY_CORPUS_DIR;
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"empty.topo", "empty input"},
      {"missing_header.topo", "header"},
      {"negative_node_count.topo", "bad node count"},
      {"malformed_node_count.topo", "bad node count"},
      {"duplicate_link.topo", "duplicate link"},
      {"self_loop.topo", "self-loop"},
      {"out_of_range.topo", "out of range"},
      {"truncated_link_line.topo", "truncated 'link' line"},
      {"truncated_missing_links.topo", "truncated input"},
      {"trailing_garbage.topo", "trailing characters"},
      {"unknown_keyword.topo", "unknown keyword"},
  };
  for (const auto& [file, needle] : bad) {
    const std::string path = dir + "/" + file;
    try {
      loadFile(path);
      ADD_FAILURE() << file << " loaded without error";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(file), std::string::npos)
          << file << ": error lacks filename: " << what;
      EXPECT_NE(what.find(needle), std::string::npos)
          << file << ": error lacks '" << needle << "': " << what;
    }
  }

  const Topology good = loadFile(dir + "/good_ring.topo");
  EXPECT_EQ(good.nodeCount(), 4u);
  EXPECT_EQ(good.linkCount(), 4u);
  const Topology zeroLinks = loadFile(dir + "/zero_links_ok.topo");
  EXPECT_EQ(zeroLinks.nodeCount(), 4u);
  EXPECT_EQ(zeroLinks.linkCount(), 0u);
}

TEST(TopologyIo, FileRoundTrip) {
  const Topology original = ring(8);
  const std::string path = ::testing::TempDir() + "/downup_io_test.topo";
  saveFile(original, path);
  const Topology restored = loadFile(path);
  EXPECT_EQ(restored.linkCount(), original.linkCount());
  EXPECT_THROW(loadFile("/nonexistent/nowhere.topo"), std::runtime_error);
}

}  // namespace
}  // namespace downup::topo
