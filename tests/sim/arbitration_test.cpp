// Switch arbitration and bandwidth-limit behaviour: one flit per physical
// channel per cycle, one per ejection port per cycle, round-robin fairness
// between competing flows, and the measurement-timeline feature.
#include <gtest/gtest.h>

#include "routing/updown.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

Routing updownOn(const Topology& topo) {
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  return routing::buildUpDown(topo, ct);
}

SimConfig baseConfig() {
  SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  return config;
}

TEST(Arbitration, EjectionPortSerializesTwoArrivals) {
  // Star: 1 and 2 both send a 16-flit packet to 3.  Both routes share only
  // the ejection port at 3 after the hub, so the second packet finishes
  // roughly one serialization time after the first.
  const Topology topo = topo::star(4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, baseConfig());
  const PacketId a = net.injectPacket(1, 3);
  const PacketId b = net.injectPacket(2, 3);
  for (int i = 0; i < 2000 && net.packetsEjected() < 2; ++i) net.step();
  ASSERT_EQ(net.packetsEjected(), 2u);
  const auto ejectA = net.packetEjectTime(a);
  const auto ejectB = net.packetEjectTime(b);
  const auto gap = ejectA > ejectB ? ejectA - ejectB : ejectB - ejectA;
  // Wormhole: the loser waits for the winner's whole worm to pass the hub
  // output channel, so the gap is at least one packet time.
  EXPECT_GE(gap, 16u);
  EXPECT_LE(gap, 48u);
}

TEST(Arbitration, SharedChannelBandwidthIsSplitFairly) {
  // Line 0-1-2: nodes 0 and 1 both flood node 2; the link 1->2 is the
  // shared bottleneck.  Over a long window both flows should get a
  // comparable share (round-robin output arbitration).
  const Topology topo = topo::line(3);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = baseConfig();
  WormholeNetwork net(routing.table(), traffic, 0.0, config);

  // Keep both source queues saturated manually.
  std::uint64_t ejectedFrom0 = 0;
  std::uint64_t ejectedFrom1 = 0;
  std::vector<PacketId> from0;
  std::vector<PacketId> from1;
  for (int round = 0; round < 200; ++round) {
    from0.push_back(net.injectPacket(0, 2));
    from1.push_back(net.injectPacket(1, 2));
  }
  for (int i = 0; i < 9000; ++i) net.step();
  for (PacketId pid : from0) {
    if (net.packetEjectTime(pid) != WormholeNetwork::kNeverEjected) {
      ++ejectedFrom0;
    }
  }
  for (PacketId pid : from1) {
    if (net.packetEjectTime(pid) != WormholeNetwork::kNeverEjected) {
      ++ejectedFrom1;
    }
  }
  ASSERT_GT(ejectedFrom0 + ejectedFrom1, 100u);
  const double share = static_cast<double>(ejectedFrom0) /
                       static_cast<double>(ejectedFrom0 + ejectedFrom1);
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.65);
}

TEST(Arbitration, ChannelNeverExceedsOneFlitPerCycle) {
  util::Rng rng(7);
  const Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = baseConfig();
  config.warmupCycles = 100;
  config.measureCycles = 4000;
  config.vcCount = 4;  // VCs share the physical link: still <= 1 flit/clk
  const RunStats stats = simulate(routing.table(), traffic, 0.9, config);
  for (double util : stats.channelUtilization) {
    EXPECT_LE(util, 1.0 + 1e-12);
  }
}

TEST(Timeline, BucketsCoverTheRunAndSumToEjections) {
  const Topology topo = topo::torus(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 1000;
  config.measureCycles = 4000;
  config.timelineBucketCycles = 500;
  const RunStats stats = simulate(routing.table(), traffic, 0.2, config);
  ASSERT_FALSE(stats.acceptedTimeline.empty());
  EXPECT_LE(stats.acceptedTimeline.size(), (1000u + 4000u) / 500u + 1);

  // Flits ejected during the measurement window == the sum of the buckets
  // that lie entirely inside it.
  std::uint64_t measuredBuckets = 0;
  for (std::size_t i = 1000 / 500; i < stats.acceptedTimeline.size(); ++i) {
    measuredBuckets += stats.acceptedTimeline[i];
  }
  EXPECT_EQ(measuredBuckets, stats.flitsEjectedMeasured);
}

TEST(Timeline, SteadyStateBucketsAreStable) {
  // After warm-up the per-bucket accepted counts should fluctuate around a
  // stable mean (stationarity), not trend.
  const Topology topo = topo::torus(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 2000;
  config.measureCycles = 16000;
  config.timelineBucketCycles = 2000;
  const RunStats stats = simulate(routing.table(), traffic, 0.15, config);
  ASSERT_GE(stats.acceptedTimeline.size(), 8u);
  // Compare the mean of the first and second half of the measured buckets.
  double first = 0.0;
  double second = 0.0;
  const std::size_t start = 1;  // skip the warm-up bucket
  const std::size_t n = stats.acceptedTimeline.size() - start;
  for (std::size_t i = 0; i < n; ++i) {
    (i < n / 2 ? first : second) +=
        static_cast<double>(stats.acceptedTimeline[start + i]);
  }
  first /= static_cast<double>(n / 2);
  second /= static_cast<double>(n - n / 2);
  EXPECT_NEAR(first, second, 0.25 * std::max(first, second));
}

TEST(Timeline, DisabledByDefault) {
  const Topology topo = topo::ring(4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config;
  config.packetLengthFlits = 4;
  config.warmupCycles = 0;
  config.measureCycles = 500;
  const RunStats stats = simulate(routing.table(), traffic, 0.1, config);
  EXPECT_TRUE(stats.acceptedTimeline.empty());
}

}  // namespace
}  // namespace downup::sim
