// Adversarial traffic patterns: tornado's fixed mapping, the hotspot
// storm's ON/OFF modulation and target aiming, the MMPP state chain, and
// the engine's modulated generation path actually draining under them.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/downup_routing.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/rng.hpp"

namespace downup::sim {
namespace {

TEST(TornadoTrafficTest, FixedHalfSpanMappingNeverSelf) {
  const TornadoTraffic pattern(10);
  EXPECT_FALSE(pattern.modulatesRate());
  util::Rng rng(1);
  for (NodeId src = 0; src < 10; ++src) {
    const NodeId dst = pattern.destination(src, rng);
    EXPECT_EQ(dst, (src + 5) % 10);
    EXPECT_NE(dst, src);
  }
  // Odd node count still maps away from the source.
  const TornadoTraffic odd(7);
  for (NodeId src = 0; src < 7; ++src) {
    EXPECT_EQ(odd.destination(src, rng), (src + 3) % 7);
  }
}

TEST(HotspotStormTrafficTest, OnOffProcessModulatesTheRate) {
  // Mean dwell 1 cycle on both sides makes every advance a state flip, so
  // the two-state process is fully deterministic for the test.
  const HotspotStormTraffic pattern(8, {0}, 0.5, 3.0, /*onMeanCycles=*/1,
                                    /*offMeanCycles=*/1, /*seed=*/5);
  EXPECT_TRUE(pattern.modulatesRate());
  EXPECT_FALSE(pattern.stormActive());  // storms start OFF
  EXPECT_EQ(pattern.rateMultiplier(3), 1.0);

  pattern.advanceCycle(1);
  EXPECT_TRUE(pattern.stormActive());
  EXPECT_EQ(pattern.rateMultiplier(3), 3.0);
  pattern.advanceCycle(1);  // idempotent per cycle: no double flip
  EXPECT_TRUE(pattern.stormActive());
  pattern.advanceCycle(2);
  EXPECT_FALSE(pattern.stormActive());
  EXPECT_EQ(pattern.rateMultiplier(3), 1.0);
}

TEST(HotspotStormTrafficTest, StormPacketsAimAtTheTargetSet) {
  const HotspotStormTraffic pattern(8, {0}, /*stormFraction=*/1.0,
                                    /*surge=*/2.0, 1, 1, 5);
  util::Rng rng(9);
  pattern.advanceCycle(1);  // flip ON
  ASSERT_TRUE(pattern.stormActive());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(pattern.destination(3, rng), 0u);  // every packet storms
    EXPECT_NE(pattern.destination(0, rng), 0u);  // a target never self-storms
  }
}

TEST(HotspotStormTrafficTest, RejectsBadArguments) {
  EXPECT_THROW(HotspotStormTraffic(8, {}, 0.3, 2.0, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(HotspotStormTraffic(8, {1, 1}, 0.3, 2.0, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(HotspotStormTraffic(8, {9}, 0.3, 2.0, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(HotspotStormTraffic(8, {1}, 1.5, 2.0, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(HotspotStormTraffic(8, {1}, 0.3, 0.5, 10, 10, 1),
               std::invalid_argument);
}

TEST(MmppTrafficTest, OnOffChainAlternatesBurstAndSilence) {
  const MmppTraffic pattern =
      MmppTraffic::onOff(8, /*burst=*/4.0, /*onMeanCycles=*/1,
                         /*offMeanCycles=*/1, /*seed=*/11);
  EXPECT_TRUE(pattern.modulatesRate());
  EXPECT_EQ(pattern.currentState(), 0u);  // starts in the ON state
  EXPECT_EQ(pattern.rateMultiplier(0), 4.0);

  pattern.advanceCycle(1);
  EXPECT_EQ(pattern.currentState(), 1u);
  EXPECT_EQ(pattern.rateMultiplier(0), 0.0);  // OFF is silent
  pattern.advanceCycle(1);  // idempotent
  EXPECT_EQ(pattern.currentState(), 1u);
  pattern.advanceCycle(2);
  EXPECT_EQ(pattern.currentState(), 0u);
}

TEST(MmppTrafficTest, RejectsDegenerateChains) {
  EXPECT_THROW(MmppTraffic(8, {MmppTraffic::State{1.0, 10}}, 1),
               std::invalid_argument);
  EXPECT_THROW(MmppTraffic(8,
                           {MmppTraffic::State{1.0, 10},
                            MmppTraffic::State{2.0, 0}},
                           1),
               std::invalid_argument);
  EXPECT_THROW(MmppTraffic(8,
                           {MmppTraffic::State{-1.0, 10},
                            MmppTraffic::State{2.0, 10}},
                           1),
               std::invalid_argument);
}

TEST(TraceReplayTrafficTest, RejectsMalformedFlowMatrices) {
  EXPECT_THROW(TraceReplayTraffic(4, {{1}, {0}, {}}),  // size mismatch
               std::invalid_argument);
  EXPECT_THROW(TraceReplayTraffic(4, {{1}, {1}, {}, {}}),  // dst == src
               std::invalid_argument);
  EXPECT_THROW(TraceReplayTraffic(4, {{7}, {}, {}, {}}),  // out of range
               std::invalid_argument);
}

TEST(ModulatedGeneration, EngineDrainsUnderEveryAdversarialPattern) {
  // End-to-end: the modulated generation path feeds the same admission and
  // routing machinery, so each adversarial pattern must run and fully
  // drain on a healthy DOWN/UP network.
  util::Rng rng(31);
  const topo::Topology topo = topo::randomIrregular(12, {.maxPorts = 4}, rng);
  util::Rng treeRng(131);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  const routing::Routing routing = core::buildDownUp(topo, ct);

  std::vector<std::unique_ptr<TrafficPattern>> patterns;
  patterns.push_back(std::make_unique<TornadoTraffic>(topo.nodeCount()));
  patterns.push_back(std::make_unique<HotspotStormTraffic>(
      topo.nodeCount(), std::vector<NodeId>{ct.root()}, 0.3, 2.0, 50, 150,
      7));
  patterns.push_back(std::make_unique<MmppTraffic>(
      MmppTraffic::onOff(topo.nodeCount(), 4.0, 40, 120, 7)));

  for (const auto& pattern : patterns) {
    SimConfig config;
    config.packetLengthFlits = 8;
    config.warmupCycles = 100;
    config.measureCycles = 800;
    config.seed = 17;
    sim::WormholeNetwork net(routing.table(), *pattern, 0.05, config);
    const RunStats stats = net.run();
    EXPECT_FALSE(stats.deadlocked) << pattern->name();
    EXPECT_TRUE(net.drainRemaining(100000)) << pattern->name();
    EXPECT_GT(net.packetsGenerated(), 0u) << pattern->name();
  }
}

}  // namespace
}  // namespace downup::sim
