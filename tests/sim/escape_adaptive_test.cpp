// Escape-channel minimal-adaptive routing (Silla & Duato style; the
// paper's reference [8]).  Soundness obligations, mechanised:
//   * the network never deadlocks, even on the adversarial witness
//     topologies, because the escape class obeys the (repaired, acyclic)
//     turn rule and a legal escape successor exists from every channel the
//     adaptive class can reach;
//   * every packet's path length equals its legal shortest distance (each
//     hop decrements the legal-steps potential);
//   * adaptive hops may violate the turn rule, escape hops never do.
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

SimConfig escapeConfig() {
  SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 500;
  config.measureCycles = 8000;
  config.vcCount = 2;
  config.escapeAdaptiveRouting = true;
  config.deadlockThresholdCycles = 3000;
  return config;
}

TEST(EscapeAdaptive, ValidationRules) {
  SimConfig config = escapeConfig();
  config.vcCount = 1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = escapeConfig();
  config.misrouteProbability = 0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = escapeConfig();
  config.adaptiveSelection = false;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(escapeConfig().validate());
}

struct EscapeCase {
  core::Algorithm algorithm;
  tree::TreePolicy policy;
  std::uint64_t seed;
};

class EscapeAdaptiveTest : public ::testing::TestWithParam<EscapeCase> {};

TEST_P(EscapeAdaptiveTest, StressedNetworkStaysLive) {
  const auto [algorithm, policy, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(seed + 100);
  const CoordinatedTree ct = CoordinatedTree::build(topo, policy, treeRng);
  const Routing routing = core::buildRouting(algorithm, topo, ct);

  SimConfig config = escapeConfig();
  config.packetLengthFlits = 64;
  const UniformTraffic traffic(topo.nodeCount());
  const RunStats stats = simulate(routing.table(), traffic, 0.8, config);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.flitsEjectedMeasured, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndTrees, EscapeAdaptiveTest,
    ::testing::Values(
        EscapeCase{core::Algorithm::kDownUp, TreePolicy::kM1SmallestFirst, 1},
        EscapeCase{core::Algorithm::kDownUp, TreePolicy::kM3LargestFirst, 2},
        EscapeCase{core::Algorithm::kLTurn, TreePolicy::kM1SmallestFirst, 3},
        EscapeCase{core::Algorithm::kUpDownBfs, TreePolicy::kM2Random, 4},
        EscapeCase{core::Algorithm::kLeftRight, TreePolicy::kM1SmallestFirst,
                   5}));

TEST(EscapeAdaptive, PathsAreExactlyLegalShortest) {
  util::Rng rng(7);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(8);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);

  SimConfig config = escapeConfig();
  config.packetLengthFlits = 8;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.tracePackets = true;
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.2, config);
  for (int i = 0; i < 6000; ++i) net.step();
  ASSERT_GT(net.packetsEjected(), 100u);

  const auto& table = routing.table();
  std::size_t checked = 0;
  for (PacketId pid = 0; pid < net.packetsGenerated(); ++pid) {
    if (net.packetEjectTime(pid) == WormholeNetwork::kNeverEjected) continue;
    const auto& path = net.packetPath(pid);
    ASSERT_FALSE(path.empty());
    const NodeId src = topo.channelSrc(path.front());
    const NodeId dst = topo.channelDst(path.back());
    EXPECT_EQ(path.size(), table.distance(src, dst));
    // Potential decreases by exactly one per hop.
    for (std::size_t i = 0; i < path.size(); ++i) {
      EXPECT_EQ(table.channelSteps(dst, path[i]), path.size() - i);
    }
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(EscapeAdaptive, AdaptiveHopsActuallyViolateTurns) {
  // The scheme is only interesting if the adaptive class really uses
  // turn-illegal hops; on up*/down* (many prohibited down->up turns) they
  // should appear under load.
  util::Rng rng(9);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(10);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = routing::buildUpDown(topo, ct);

  SimConfig config = escapeConfig();
  config.packetLengthFlits = 8;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.tracePackets = true;
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.3, config);
  for (int i = 0; i < 6000; ++i) net.step();

  std::size_t illegalTurns = 0;
  for (PacketId pid = 0; pid < net.packetsGenerated(); ++pid) {
    const auto& path = net.packetPath(pid);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const NodeId via = topo.channelDst(path[i]);
      if (!routing.permissions().allowed(via, path[i], path[i + 1])) {
        ++illegalTurns;
      }
    }
  }
  EXPECT_GT(illegalTurns, 0u)
      << "expected the adaptive class to use turn-illegal minimal hops";
}

TEST(EscapeAdaptive, ThroughputStaysInTheSameBallparkAsPlainTwoVc) {
  // Empirical finding (see EXPERIMENTS.md): on dense port-saturated
  // networks the scheme trades a little throughput (~0.9-1.0x of plain
  // 2-VC turn-restricted routing) for its turn freedom — the escape class
  // confined to VC 0 costs more than the adaptive class gains.  Guard the
  // ballpark so a real regression (e.g. broken escape fallback causing
  // stalls) is caught.
  util::Rng rng(11);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(12);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  const UniformTraffic traffic(topo.nodeCount());

  SimConfig config = escapeConfig();
  config.packetLengthFlits = 32;
  config.seed = 13;
  const RunStats escape = simulate(routing.table(), traffic, 0.6, config);
  config.escapeAdaptiveRouting = false;
  const RunStats plain = simulate(routing.table(), traffic, 0.6, config);
  EXPECT_GE(escape.acceptedFlitsPerNodePerCycle,
            plain.acceptedFlitsPerNodePerCycle * 0.8);
  EXPECT_LE(escape.acceptedFlitsPerNodePerCycle,
            plain.acceptedFlitsPerNodePerCycle * 1.2);
}

}  // namespace
}  // namespace downup::sim
