// Failure injection: the deadlock watchdog must fire when turn rules are
// broken and stay silent when they hold — this is the simulator-level
// evidence that the turn-model machinery is what provides deadlock freedom.
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "routing/algorithm.hpp"
#include "routing/updown.hpp"
#include "sim/network.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using routing::TurnPermissions;
using routing::TurnSet;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

SimConfig stressConfig() {
  SimConfig config;
  config.packetLengthFlits = 128;  // long worms wrap around small rings
  config.warmupCycles = 0;
  config.measureCycles = 60000;
  config.deadlockThresholdCycles = 2000;
  config.seed = 3;
  return config;
}

TEST(DeadlockInjection, UnrestrictedRingDeadlocks) {
  // Every node of a 5-ring sends 128-flit worms two hops clockwise; the
  // clockwise route is the unique minimal one, so every worm holds one
  // clockwise channel while requesting the next, and with all turns allowed
  // the classic circular wait forms.  Movement then ceases and the watchdog
  // must fire.
  const Topology topo = topo::ring(5);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  TurnPermissions perms(topo, routing::classifyUpDown(topo, ct),
                        TurnSet::allAllowed());
  const Routing routing("unrestricted", std::move(perms));

  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, stressConfig());
  for (topo::NodeId v = 0; v < 5; ++v) net.injectPacket(v, (v + 2) % 5);
  for (int i = 0; i < 20000 && !net.deadlocked(); ++i) net.step();
  EXPECT_TRUE(net.deadlocked())
      << "five co-injected clockwise worms must wormhole-deadlock";
  EXPECT_LT(net.packetsEjected(), 5u);
}

TEST(DeadlockInjection, UpDownRuleOnSameRingNeverDeadlocks) {
  const Topology topo = topo::ring(5);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing routing = routing::buildUpDown(topo, ct);
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, stressConfig());
  for (topo::NodeId v = 0; v < 5; ++v) net.injectPacket(v, (v + 2) % 5);
  for (int i = 0; i < 50000 && net.packetsEjected() < 5; ++i) net.step();
  EXPECT_FALSE(net.deadlocked());
  EXPECT_EQ(net.packetsEjected(), 5u);
}

/// The DESIGN.md §4.4 witness: the paper's turn set deadlocks in an actual
/// wormhole simulation; the repaired rule on the identical setup does not.
Topology counterexampleTopology() {
  Topology topo(8);
  for (NodeId v = 1; v <= 5; ++v) topo.addLink(0, v);
  topo.addLink(1, 7);
  topo.addLink(2, 6);
  topo.addLink(5, 7);
  topo.addLink(2, 7);
  topo.addLink(2, 3);
  topo.addLink(3, 6);
  topo.addLink(4, 6);
  topo.addLink(4, 5);
  return topo;
}

TEST(DeadlockInjection, PublishedDownUpRuleDeadlocksOnWitness) {
  // With shortest-path routing the cyclic turns happen to lie off every
  // minimal path of this witness; the paper's algorithms are *non-minimal*
  // adaptive, so we drive the full legal relation (misroute knob) and the
  // published rule wormhole-deadlocks.
  const Topology topo = counterexampleTopology();
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, rng);
  const Routing routing = core::buildDownUp(
      topo, ct, {.releaseRedundant = false, .repairCycles = false});

  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = stressConfig();
  config.measureCycles = 200000;
  config.misrouteProbability = 0.5;
  WormholeNetwork net(routing.table(), traffic, 1.0, config);
  const RunStats stats = net.run();
  EXPECT_TRUE(stats.deadlocked)
      << "the unrepaired published rule should deadlock on the witness";
}

TEST(DeadlockInjection, RepairedDownUpSurvivesTheWitness) {
  const Topology topo = counterexampleTopology();
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, rng);
  const Routing routing = core::buildDownUp(topo, ct);

  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = stressConfig();
  config.measureCycles = 200000;
  config.misrouteProbability = 0.5;  // same non-minimal relation, repaired
  WormholeNetwork net(routing.table(), traffic, 1.0, config);
  const RunStats stats = net.run();
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.flitsEjectedMeasured, 0u);
}

TEST(DeadlockInjection, WatchdogSilentOnIdleNetwork) {
  const Topology topo = topo::ring(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing routing = routing::buildUpDown(topo, ct);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = stressConfig();
  config.measureCycles = 10000;
  WormholeNetwork net(routing.table(), traffic, 0.0, config);
  const RunStats stats = net.run();
  EXPECT_FALSE(stats.deadlocked) << "an idle network is not a deadlock";
}

}  // namespace
}  // namespace downup::sim
