// Packet tracing: every simulated packet's recorded path must be a legal,
// connected channel walk; with shortest-path routing it must additionally
// be exactly minimal.  This ties the simulator back to the routing theory:
// whatever contention does, packets never violate the turn rule.
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

struct TraceCase {
  core::Algorithm algorithm;
  double misroute;
};

class TraceLegalityTest : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceLegalityTest, EveryTracedPathIsLegal) {
  const auto [algorithm, misroute] = GetParam();
  util::Rng rng(11);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(12);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildRouting(algorithm, topo, ct);

  SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 0;
  config.measureCycles = 6000;
  config.tracePackets = true;
  config.misrouteProbability = misroute;
  config.seed = 21;
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.15, config);
  for (int i = 0; i < 6000; ++i) net.step();
  ASSERT_GT(net.packetsEjected(), 50u);

  const auto& perms = routing.permissions();
  std::size_t checked = 0;
  for (PacketId pid = 0; pid < net.packetsGenerated(); ++pid) {
    if (net.packetEjectTime(pid) == WormholeNetwork::kNeverEjected) continue;
    const auto& path = net.packetPath(pid);
    ASSERT_FALSE(path.empty());
    // Path structure: starts at src, chains, ends at dst.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const NodeId via = topo.channelDst(path[i]);
      EXPECT_EQ(via, topo.channelSrc(path[i + 1]));
      EXPECT_TRUE(perms.allowed(via, path[i], path[i + 1]))
          << "illegal turn in a traced path";
    }
    if (misroute == 0.0) {
      // Shortest-path mode: traced length equals the legal distance.
      const NodeId src = topo.channelSrc(path.front());
      const NodeId dst = topo.channelDst(path.back());
      EXPECT_EQ(path.size(), routing.table().distance(src, dst));
    }
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndModes, TraceLegalityTest,
    ::testing::Values(TraceCase{core::Algorithm::kDownUp, 0.0},
                      TraceCase{core::Algorithm::kDownUp, 0.3},
                      TraceCase{core::Algorithm::kLTurn, 0.0},
                      TraceCase{core::Algorithm::kLeftRight, 0.0},
                      TraceCase{core::Algorithm::kUpDownBfs, 0.0},
                      TraceCase{core::Algorithm::kUpDownBfs, 0.3}));

TEST(Tracing, DisabledByDefault) {
  const Topology topo = topo::ring(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing routing = routing::buildUpDown(topo, ct);
  SimConfig config;
  config.packetLengthFlits = 4;
  config.warmupCycles = 0;
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, config);
  const PacketId pid = net.injectPacket(0, 2);
  for (int i = 0; i < 200; ++i) net.step();
  EXPECT_NE(net.packetEjectTime(pid), WormholeNetwork::kNeverEjected);
  EXPECT_TRUE(net.packetPath(pid).empty());
}

TEST(LatencyBreakdown, QueueingPlusNetworkEqualsTotal) {
  util::Rng rng(5);
  const Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(6);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 500;
  config.measureCycles = 5000;
  const UniformTraffic traffic(topo.nodeCount());
  const RunStats stats = simulate(routing.table(), traffic, 0.2, config);
  EXPECT_GT(stats.avgQueueingDelay, 0.0);
  EXPECT_GT(stats.avgNetworkLatency, 16.0);  // at least serialization time
  EXPECT_NEAR(stats.avgQueueingDelay + stats.avgNetworkLatency,
              stats.avgLatency, 1e-9);
}

TEST(BurstTraffic, SameMeanLoadButWorseTails) {
  util::Rng rng(7);
  const Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(8);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  SimConfig config;
  config.packetLengthFlits = 16;
  config.warmupCycles = 2000;
  config.measureCycles = 30000;
  config.seed = 9;
  const UniformTraffic traffic(topo.nodeCount());
  const double load = 0.1;

  const RunStats smooth = simulate(routing.table(), traffic, load, config);
  config.burstFactor = 8.0;
  config.burstOnMeanCycles = 300;
  const RunStats bursty = simulate(routing.table(), traffic, load, config);

  // Mean accepted load stays in the same ballpark...
  EXPECT_NEAR(bursty.acceptedFlitsPerNodePerCycle,
              smooth.acceptedFlitsPerNodePerCycle, load * 0.35);
  // ...but burst queueing inflates latency and its tail.
  EXPECT_GT(bursty.avgLatency, smooth.avgLatency);
  EXPECT_GT(bursty.p99Latency, smooth.p99Latency);
}

TEST(BurstTraffic, FactorOneIsPlainBernoulli) {
  const Topology topo = topo::ring(6);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing routing = routing::buildUpDown(topo, ct);
  SimConfig a;
  a.packetLengthFlits = 8;
  a.warmupCycles = 100;
  a.measureCycles = 3000;
  SimConfig b = a;
  b.burstFactor = 1.0;  // explicit, same as default
  const UniformTraffic traffic(topo.nodeCount());
  const RunStats statsA = simulate(routing.table(), traffic, 0.1, a);
  const RunStats statsB = simulate(routing.table(), traffic, 0.1, b);
  EXPECT_EQ(statsA.packetsGenerated, statsB.packetsGenerated);
  EXPECT_DOUBLE_EQ(statsA.avgLatency, statsB.avgLatency);
}

TEST(BurstTraffic, ValidatesParameters) {
  SimConfig config;
  config.burstFactor = 0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.burstOnMeanCycles = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.misrouteProbability = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace downup::sim
