#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "topology/generate.hpp"

namespace downup::sim {
namespace {

TEST(UniformTraffic, NeverReturnsSource) {
  UniformTraffic traffic(16);
  util::Rng rng(1);
  for (NodeId src = 0; src < 16; ++src) {
    for (int i = 0; i < 200; ++i) {
      const NodeId dst = traffic.destination(src, rng);
      EXPECT_NE(dst, src);
      EXPECT_LT(dst, 16u);
    }
  }
}

TEST(UniformTraffic, CoversAllDestinationsUniformly) {
  UniformTraffic traffic(8);
  util::Rng rng(2);
  std::map<NodeId, int> counts;
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[traffic.destination(3, rng)];
  EXPECT_EQ(counts.size(), 7u);  // every node but the source
  for (const auto& [dst, count] : counts) {
    EXPECT_NEAR(count, kDraws / 7, kDraws / 7 * 0.1) << "dst " << dst;
  }
}

TEST(UniformTraffic, RejectsTinyNetworks) {
  EXPECT_THROW(UniformTraffic(1), std::invalid_argument);
}

TEST(HotspotTraffic, FractionIsRespected) {
  HotspotTraffic traffic(16, 5, 0.3);
  util::Rng rng(3);
  int hot = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (traffic.destination(0, rng) == 5) ++hot;
  }
  // 0.3 + 0.7/15 background probability of hitting node 5.
  const double expected = 0.3 + 0.7 / 15.0;
  EXPECT_NEAR(hot / static_cast<double>(kDraws), expected, 0.02);
}

TEST(HotspotTraffic, HotspotSourceDrawsUniform) {
  HotspotTraffic traffic(8, 2, 1.0);
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const NodeId dst = traffic.destination(2, rng);
    EXPECT_NE(dst, 2u);
  }
}

TEST(HotspotTraffic, ValidatesArguments) {
  EXPECT_THROW(HotspotTraffic(8, 9, 0.5), std::invalid_argument);
  EXPECT_THROW(HotspotTraffic(8, 2, 1.5), std::invalid_argument);
  EXPECT_THROW(HotspotTraffic(8, 2, -0.1), std::invalid_argument);
}

TEST(PermutationTraffic, RandomIsFixedPointFreeAndStable) {
  util::Rng rng(5);
  const PermutationTraffic traffic = PermutationTraffic::random(32, rng);
  util::Rng unused(99);
  for (NodeId src = 0; src < 32; ++src) {
    const NodeId dst = traffic.destination(src, unused);
    EXPECT_NE(dst, src);
    // Deterministic: same answer every time.
    EXPECT_EQ(traffic.destination(src, unused), dst);
  }
}

TEST(PermutationTraffic, RejectsFixedPoints) {
  EXPECT_THROW(PermutationTraffic(std::vector<NodeId>{0, 2, 1}),
               std::invalid_argument);
  EXPECT_THROW(PermutationTraffic(std::vector<NodeId>{5, 0, 1}),
               std::invalid_argument);
}

TEST(LocalTraffic, StaysWithinRadius) {
  const topo::Topology topo = topo::ring(12);
  LocalTraffic traffic(topo, 2);
  util::Rng rng(6);
  for (NodeId src = 0; src < 12; ++src) {
    for (int i = 0; i < 100; ++i) {
      const NodeId dst = traffic.destination(src, rng);
      EXPECT_NE(dst, src);
      const auto forward = (dst + 12 - src) % 12;
      const auto hops = std::min<std::uint32_t>(forward, 12 - forward);
      EXPECT_LE(hops, 2u);
    }
  }
}

TEST(LocalTraffic, RejectsZeroRadius) {
  EXPECT_THROW(LocalTraffic(topo::ring(6), 0), std::invalid_argument);
}

TEST(TrafficNames, AreStable) {
  util::Rng rng(7);
  EXPECT_EQ(UniformTraffic(4).name(), "uniform");
  EXPECT_EQ(HotspotTraffic(4, 0, 0.1).name(), "hotspot");
  EXPECT_EQ(PermutationTraffic::random(4, rng).name(), "permutation");
  EXPECT_EQ(LocalTraffic(topo::ring(6), 1).name(), "local");
}

}  // namespace
}  // namespace downup::sim
