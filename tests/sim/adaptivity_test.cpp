// Deterministic-selection mode: with adaptiveSelection off every packet of
// a given (source, destination) pair follows the same fixed path, and the
// network remains deadlock-free and live.
#include <gtest/gtest.h>

#include <map>

#include "core/downup_routing.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

TEST(DeterministicSelection, SamePairAlwaysTakesTheSamePath) {
  util::Rng rng(4);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(5);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);

  SimConfig config;
  config.packetLengthFlits = 8;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.tracePackets = true;
  config.adaptiveSelection = false;
  config.seed = 6;
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.1, config);
  for (int i = 0; i < 8000; ++i) net.step();
  ASSERT_GT(net.packetsEjected(), 100u);

  std::map<std::pair<NodeId, NodeId>, std::vector<topo::ChannelId>> seen;
  for (PacketId pid = 0; pid < net.packetsGenerated(); ++pid) {
    if (net.packetEjectTime(pid) == WormholeNetwork::kNeverEjected) continue;
    const auto& path = net.packetPath(pid);
    ASSERT_FALSE(path.empty());
    const auto key = std::pair(topo.channelSrc(path.front()),
                               topo.channelDst(path.back()));
    const auto [it, inserted] = seen.emplace(key, path);
    if (!inserted) {
      EXPECT_EQ(it->second, path)
          << "pair " << key.first << "->" << key.second
          << " took two different paths in deterministic mode";
    }
  }
  EXPECT_GT(seen.size(), 30u);
}

TEST(DeterministicSelection, StaysLiveUnderLoad) {
  util::Rng rng(8);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(9);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  for (core::Algorithm algorithm :
       {core::Algorithm::kLTurn, core::Algorithm::kDownUp}) {
    const Routing routing = core::buildRouting(algorithm, topo, ct);
    SimConfig config;
    config.packetLengthFlits = 32;
    config.warmupCycles = 1000;
    config.measureCycles = 8000;
    config.deadlockThresholdCycles = 3000;
    config.adaptiveSelection = false;
    const UniformTraffic traffic(topo.nodeCount());
    const RunStats stats = simulate(routing.table(), traffic, 0.5, config);
    EXPECT_FALSE(stats.deadlocked) << core::toString(algorithm);
    EXPECT_GT(stats.flitsEjectedMeasured, 0u);
  }
}

TEST(DeterministicSelection, AdaptiveNeverLosesToDeterministicBadly) {
  // Not a theorem, but a regression guard: on a congested network adaptive
  // selection should reach at least the deterministic throughput.
  util::Rng rng(10);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(11);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  SimConfig config;
  config.packetLengthFlits = 32;
  config.warmupCycles = 1000;
  config.measureCycles = 10000;
  config.seed = 12;
  const UniformTraffic traffic(topo.nodeCount());

  config.adaptiveSelection = true;
  const RunStats adaptive = simulate(routing.table(), traffic, 0.6, config);
  config.adaptiveSelection = false;
  const RunStats fixed = simulate(routing.table(), traffic, 0.6, config);
  EXPECT_GE(adaptive.acceptedFlitsPerNodePerCycle,
            fixed.acceptedFlitsPerNodePerCycle * 0.98);
}

}  // namespace
}  // namespace downup::sim
