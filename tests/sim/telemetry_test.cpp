// Telemetry unit tests: timeline bucketing edge cases, zero-delivery fills
// and the measurement-window gating of every recorder.
#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

namespace downup::sim {
namespace {

TEST(TelemetryTest, TimelineBucketsWhenWindowNotMultipleOfBucketWidth) {
  // Bucket width 100, events up to cycle 250: the last bucket is partial
  // and must still be recorded at its own index.
  Telemetry telemetry(/*channelCount=*/2, /*timelineBucketCycles=*/100);
  telemetry.recordEjectedFlit(/*now=*/0, /*measuring=*/true);
  telemetry.recordEjectedFlit(99, true);
  telemetry.recordEjectedFlit(100, true);
  telemetry.recordEjectedFlit(250, true);

  RunStats stats;
  telemetry.fill(stats, /*measuredCycles=*/251, /*nodeCount=*/4);
  ASSERT_EQ(stats.acceptedTimeline.size(), 3u);
  EXPECT_EQ(stats.acceptedTimeline[0], 2u);
  EXPECT_EQ(stats.acceptedTimeline[1], 1u);
  EXPECT_EQ(stats.acceptedTimeline[2], 1u);
}

TEST(TelemetryTest, TimelineCountsWarmupFlitsButMeasuredCountersDoNot) {
  // The timeline covers the whole run (stationarity checks need warm-up),
  // while the measured ejected-flit counter honours the gate.
  Telemetry telemetry(1, 10);
  telemetry.recordEjectedFlit(3, /*measuring=*/false);
  telemetry.recordEjectedFlit(17, /*measuring=*/true);

  RunStats stats;
  telemetry.fill(stats, 20, 1);
  ASSERT_EQ(stats.acceptedTimeline.size(), 2u);
  EXPECT_EQ(stats.acceptedTimeline[0], 1u);
  EXPECT_EQ(stats.acceptedTimeline[1], 1u);
  EXPECT_EQ(stats.flitsEjectedMeasured, 1u);
}

TEST(TelemetryTest, TimelineDisabledWhenBucketWidthZero) {
  Telemetry telemetry(1, 0);
  telemetry.recordEjectedFlit(5, true);
  RunStats stats;
  telemetry.fill(stats, 10, 1);
  EXPECT_TRUE(stats.acceptedTimeline.empty());
}

TEST(TelemetryTest, ZeroDeliveredPacketsFillsFiniteDefaults) {
  // A run that delivered nothing must not divide by zero or emit NaNs:
  // the latency block stays at its zero defaults.
  Telemetry telemetry(3, 0);
  RunStats stats;
  telemetry.fill(stats, /*measuredCycles=*/1000, /*nodeCount=*/8);
  EXPECT_EQ(stats.packetsEjectedMeasured, 0u);
  EXPECT_EQ(stats.flitsEjectedMeasured, 0u);
  EXPECT_DOUBLE_EQ(stats.avgLatency, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50Latency, 0.0);
  EXPECT_DOUBLE_EQ(stats.p99Latency, 0.0);
  EXPECT_DOUBLE_EQ(stats.acceptedFlitsPerNodePerCycle, 0.0);
  ASSERT_EQ(stats.channelUtilization.size(), 3u);
  for (double u : stats.channelUtilization) EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(TelemetryTest, ZeroMeasuredCyclesClampsDivisor) {
  // measuredCycles == 0 (e.g. a run that deadlocked during warm-up) clamps
  // the divisor to 1 instead of producing inf/NaN.
  Telemetry telemetry(1, 0);
  telemetry.recordEjectedFlit(0, true);
  telemetry.recordChannelFlit(0, true);
  RunStats stats;
  telemetry.fill(stats, 0, 2);
  EXPECT_DOUBLE_EQ(stats.acceptedFlitsPerNodePerCycle, 0.5);
  EXPECT_DOUBLE_EQ(stats.channelUtilization[0], 1.0);
}

TEST(TelemetryTest, ChannelFlitRecorderGatesOnMeasurementWindow) {
  // The gate lives inside the recorder (like recordEjectedFlit /
  // recordDelivered), so warm-up flits can never leak into utilization.
  Telemetry telemetry(2, 0);
  telemetry.recordChannelFlit(0, /*measuring=*/false);
  telemetry.recordChannelFlit(0, /*measuring=*/true);
  telemetry.recordChannelFlit(1, /*measuring=*/true);
  telemetry.recordChannelFlit(1, /*measuring=*/true);

  RunStats stats;
  telemetry.fill(stats, /*measuredCycles=*/4, /*nodeCount=*/1);
  ASSERT_EQ(stats.channelUtilization.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.channelUtilization[0], 0.25);
  EXPECT_DOUBLE_EQ(stats.channelUtilization[1], 0.5);
}

TEST(TelemetryTest, DeliveredGateSplitsLatencySketchFromMeasuredCount) {
  // recordDelivered always feeds the latency sketch (the caller pre-filters
  // by generation time) but only counts measured packets when gated in.
  Telemetry telemetry(1, 0);
  telemetry.recordDelivered(10.0, 2.0, /*measuring=*/false);
  telemetry.recordDelivered(20.0, 4.0, /*measuring=*/true);
  RunStats stats;
  telemetry.fill(stats, 100, 1);
  EXPECT_EQ(stats.packetsEjectedMeasured, 1u);
  EXPECT_DOUBLE_EQ(stats.avgLatency, 15.0);
  EXPECT_DOUBLE_EQ(stats.avgQueueingDelay, 3.0);
  EXPECT_DOUBLE_EQ(stats.avgNetworkLatency, 12.0);
}

}  // namespace
}  // namespace downup::sim
