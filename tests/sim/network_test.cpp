#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "routing/updown.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::sim {
namespace {

using routing::Routing;
using topo::NodeId;
using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

Routing updownOn(const Topology& topo) {
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  return routing::buildUpDown(topo, ct);
}

SimConfig quietConfig(std::uint32_t packetLen = 16) {
  SimConfig config;
  config.packetLengthFlits = packetLen;
  config.warmupCycles = 0;
  config.measureCycles = 100000;
  config.deadlockThresholdCycles = 5000;
  return config;
}

struct LatencyCase {
  NodeId lineLength;
  NodeId dst;
  std::uint32_t packetLen;
};

class SinglePacketLatencyTest : public ::testing::TestWithParam<LatencyCase> {};

TEST_P(SinglePacketLatencyTest, MatchesTheAnalyticalPipelineFormula) {
  // Zero-load latency of one packet over h hops with L flits:
  //   inject at g; header leaves the source at g+1; per hop: 1 clock
  //   routing + 1 clock switch + 1 clock link; tail trails L-1 clocks at
  //   full pipeline rate -> tail ejected at g + 3h + L, inclusive latency
  //   3h + L + 1.
  const auto [lineLength, dst, packetLen] = GetParam();
  const Topology topo = topo::line(lineLength);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, quietConfig(packetLen));

  const PacketId pid = net.injectPacket(0, dst);
  for (int i = 0; i < 20000 && net.packetEjectTime(pid) ==
                                   WormholeNetwork::kNeverEjected;
       ++i) {
    net.step();
  }
  ASSERT_NE(net.packetEjectTime(pid), WormholeNetwork::kNeverEjected);
  const std::uint64_t hops = dst;  // distance on a line from node 0
  EXPECT_EQ(net.packetEjectTime(pid) - net.packetGenTime(pid) + 1,
            3 * hops + packetLen + 1);
}

INSTANTIATE_TEST_SUITE_P(HopAndLengthSweep, SinglePacketLatencyTest,
                         ::testing::Values(LatencyCase{2, 1, 1},
                                           LatencyCase{2, 1, 16},
                                           LatencyCase{3, 2, 16},
                                           LatencyCase{5, 4, 16},
                                           LatencyCase{8, 7, 16},
                                           LatencyCase{5, 4, 128},
                                           LatencyCase{8, 7, 1},
                                           LatencyCase{8, 3, 64}));

TEST(WormholeNetwork, AllInjectedPacketsDrain) {
  const Topology topo = topo::mesh(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, quietConfig());

  util::Rng rng(11);
  constexpr int kPackets = 60;
  for (int i = 0; i < kPackets; ++i) {
    const NodeId src = static_cast<NodeId>(rng.below(16));
    NodeId dst = static_cast<NodeId>(rng.below(16));
    if (dst == src) dst = (dst + 1) % 16;
    net.injectPacket(src, dst);
  }
  for (int i = 0; i < 50000 && net.packetsEjected() < kPackets; ++i) {
    net.step();
  }
  EXPECT_EQ(net.packetsEjected(), kPackets);
  EXPECT_EQ(net.flitsInFlight(), 0u);
  EXPECT_FALSE(net.deadlocked());
  for (NodeId v = 0; v < 16; ++v) EXPECT_EQ(net.sourceQueueLength(v), 0u);
}

TEST(WormholeNetwork, FlitConservationAtModerateLoad) {
  const Topology topo = topo::torus(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(8);
  config.seed = 5;
  WormholeNetwork net(routing.table(), traffic, 0.2, config);
  for (int i = 0; i < 3000; ++i) net.step();

  std::uint64_t queuedFlits = 0;
  for (NodeId v = 0; v < topo.nodeCount(); ++v) {
    queuedFlits += net.sourceQueueLength(v);  // packets, counted below
  }
  // Every generated packet is either fully ejected, queued at a source, or
  // partially in flight; we check the packet-level inequality.
  EXPECT_GE(net.packetsGenerated(), net.packetsEjected());
  EXPECT_GT(net.packetsEjected(), 0u);
  EXPECT_FALSE(net.deadlocked());
}

TEST(WormholeNetwork, DeterministicUnderSeed) {
  const Topology topo = topo::mesh(3, 3);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(8);
  config.measureCycles = 4000;
  config.seed = 99;

  const RunStats a = simulate(routing.table(), traffic, 0.15, config);
  const RunStats b = simulate(routing.table(), traffic, 0.15, config);
  EXPECT_EQ(a.packetsGenerated, b.packetsGenerated);
  EXPECT_EQ(a.flitsEjectedMeasured, b.flitsEjectedMeasured);
  EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
  EXPECT_EQ(a.channelUtilization, b.channelUtilization);

  SimConfig other = config;
  other.seed = 100;
  const RunStats c = simulate(routing.table(), traffic, 0.15, other);
  EXPECT_TRUE(a.packetsGenerated != c.packetsGenerated ||
              a.avgLatency != c.avgLatency)
      << "different seeds produced identical runs";
}

TEST(WormholeNetwork, ChannelUtilizationWithinPhysicalBounds) {
  const Topology topo = topo::mesh(3, 3);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(8);
  config.measureCycles = 5000;
  const RunStats stats = simulate(routing.table(), traffic, 0.5, config);
  ASSERT_EQ(stats.channelUtilization.size(), topo.channelCount());
  double total = 0.0;
  for (double util : stats.channelUtilization) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);  // one flit per channel per cycle, hard bound
    total += util;
  }
  EXPECT_GT(total, 0.0);
}

TEST(WormholeNetwork, AcceptedTrafficTracksOfferedAtLowLoad) {
  const Topology topo = topo::torus(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(8);
  config.warmupCycles = 2000;
  config.measureCycles = 10000;
  const double offered = 0.05;
  const RunStats stats = simulate(routing.table(), traffic, offered, config);
  EXPECT_NEAR(stats.acceptedFlitsPerNodePerCycle, offered, offered * 0.2);
  EXPECT_GT(stats.avgLatency, 0.0);
  EXPECT_LE(stats.p50Latency, stats.p99Latency);
}

TEST(WormholeNetwork, LatencyGrowsWithLoad) {
  const Topology topo = topo::mesh(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(16);
  config.warmupCycles = 1000;
  config.measureCycles = 6000;
  const RunStats low = simulate(routing.table(), traffic, 0.02, config);
  const RunStats high = simulate(routing.table(), traffic, 0.5, config);
  EXPECT_GT(high.avgLatency, low.avgLatency);
}

TEST(WormholeNetwork, VirtualChannelsImproveOrMatchThroughput) {
  const Topology topo = topo::torus(4, 4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(16);
  config.warmupCycles = 1000;
  config.measureCycles = 8000;
  config.vcCount = 1;
  const RunStats oneVc = simulate(routing.table(), traffic, 0.6, config);
  config.vcCount = 4;
  const RunStats fourVc = simulate(routing.table(), traffic, 0.6, config);
  EXPECT_GE(fourVc.acceptedFlitsPerNodePerCycle,
            oneVc.acceptedFlitsPerNodePerCycle * 0.95);
}

TEST(WormholeNetwork, SourceQueueCapBoundsBacklog) {
  // At saturation the Bernoulli process must stall once the per-node queue
  // holds sourceQueueCapPackets packets, bounding memory and latency.
  const Topology topo = topo::ring(4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(32);
  config.sourceQueueCapPackets = 2;
  WormholeNetwork net(routing.table(), traffic, 1.0, config);
  for (int i = 0; i < 4000; ++i) {
    net.step();
    for (NodeId v = 0; v < 4; ++v) {
      ASSERT_LE(net.sourceQueueLength(v), 2u);
    }
  }
  // Generation was throttled: far fewer packets than the unthrottled
  // Bernoulli expectation of cycles * rate / length per node.
  EXPECT_LT(net.packetsGenerated(), 4u * 4000u / 32u);
  EXPECT_GT(net.packetsGenerated(), 0u);
}

TEST(WormholeNetwork, StatsAreWellFormedMidRun) {
  const Topology topo = topo::mesh(3, 3);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  SimConfig config = quietConfig(8);
  config.warmupCycles = 100;
  WormholeNetwork net(routing.table(), traffic, 0.2, config);
  for (int i = 0; i < 1500; ++i) net.step();
  const RunStats stats = net.collectStats();
  EXPECT_EQ(stats.cycles, 1500u);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.packetsGenerated, 0u);
  EXPECT_GE(stats.avgLatency, 0.0);
  EXPECT_EQ(stats.channelUtilization.size(), topo.channelCount());
}

TEST(WormholeNetwork, RejectsBadInjectionRate) {
  const Topology topo = topo::ring(4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  EXPECT_THROW(WormholeNetwork(routing.table(), traffic, -0.1, quietConfig()),
               std::invalid_argument);
  EXPECT_THROW(WormholeNetwork(routing.table(), traffic, 1.5, quietConfig()),
               std::invalid_argument);
}

TEST(WormholeNetwork, RejectsBadInjectEndpoints) {
  const Topology topo = topo::ring(4);
  const Routing routing = updownOn(topo);
  const UniformTraffic traffic(topo.nodeCount());
  WormholeNetwork net(routing.table(), traffic, 0.0, quietConfig());
  EXPECT_THROW(net.injectPacket(0, 0), std::invalid_argument);
  EXPECT_THROW(net.injectPacket(0, 9), std::invalid_argument);
}

TEST(SimConfig, ValidateCatchesNonsense) {
  SimConfig config;
  config.packetLengthFlits = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.vcCount = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.vcCount = 99;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.bufferDepthFlits = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  config.measureCycles = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SimConfig{};
  EXPECT_NO_THROW(config.validate());
}

}  // namespace
}  // namespace downup::sim
