// traffic_trace/1 ingestion: a valid trace loads into per-source flow
// lists and a replay pattern that cycles them in order, and every file in
// the malformed corpus fails with a filename:line diagnostic instead of
// loading a partial demand matrix.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/trace_replay.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace downup::sim {
namespace {

std::string corpusPath(const std::string& name) {
  return std::string(DOWNUP_SIM_CORPUS_DIR) + "/" + name;
}

/// Loads a corpus file expecting failure; checks the diagnostic carries the
/// file name, the 1-based line number and the message fragment.
void expectCorpusFailure(const std::string& name, std::size_t line,
                         std::string_view needle) {
  try {
    loadTrafficTraceFile(corpusPath(name));
    FAIL() << name << " was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(name + ":" + std::to_string(line)), std::string::npos)
        << name << ": " << what;
    EXPECT_NE(what.find(needle), std::string::npos) << name << ": " << what;
  }
}

TEST(TraceReplayTest, LoadsValidTraceInRecordOrder) {
  const TrafficTrace trace = loadTrafficTraceFile(corpusPath("good_small.jsonl"));
  EXPECT_EQ(trace.nodeCount, 8u);
  EXPECT_EQ(trace.records, 5u);
  // Per-source destination lists keep file order.
  EXPECT_EQ(trace.flows[0], (std::vector<NodeId>{5, 3, 1}));
  EXPECT_EQ(trace.flows[2], (std::vector<NodeId>{7}));
  EXPECT_EQ(trace.flows[6], (std::vector<NodeId>{2}));
  EXPECT_TRUE(trace.flows[1].empty());
}

TEST(TraceReplayTest, PatternCyclesRecordedFlowsAndWraps) {
  const TrafficTrace trace = loadTrafficTraceFile(corpusPath("good_small.jsonl"));
  const TraceReplayTraffic pattern = trace.makePattern();
  EXPECT_FALSE(pattern.modulatesRate());  // replay pins demand, not timing

  util::Rng rng(3);
  // Source 0 recorded 5, 3, 1 — replay yields them in order, then wraps.
  EXPECT_EQ(pattern.destination(0, rng), 5u);
  EXPECT_EQ(pattern.destination(0, rng), 3u);
  EXPECT_EQ(pattern.destination(0, rng), 1u);
  EXPECT_EQ(pattern.destination(0, rng), 5u);
  // A single-flow source repeats its one destination.
  EXPECT_EQ(pattern.destination(2, rng), 7u);
  EXPECT_EQ(pattern.destination(2, rng), 7u);
}

TEST(TraceReplayTest, SourcesWithoutRecordsFallBackToUniform) {
  const TrafficTrace trace = loadTrafficTraceFile(corpusPath("good_small.jsonl"));
  const TraceReplayTraffic pattern = trace.makePattern();
  util::Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const NodeId dst = pattern.destination(1, rng);  // node 1 has no flows
    EXPECT_NE(dst, 1u);
    EXPECT_LT(dst, 8u);
  }
}

TEST(TraceReplayTest, EmptyStreamIsRejected) {
  std::istringstream in("");
  EXPECT_THROW(loadTrafficTrace(in, "empty"), std::runtime_error);
}

TEST(TraceReplayTest, MalformedCorpusFailsAtTheOffendingLine) {
  expectCorpusFailure("bad_schema.jsonl", 1, "unsupported schema");
  expectCorpusFailure("missing_dst.jsonl", 2, "dst");
  expectCorpusFailure("src_equals_dst.jsonl", 2, "src == dst");
  expectCorpusFailure("out_of_range.jsonl", 2, "out of range");
  expectCorpusFailure("unknown_key.jsonl", 2, "unknown key");
  expectCorpusFailure("no_records.jsonl", 1, "no records");
  expectCorpusFailure("not_object.jsonl", 2, "");
  expectCorpusFailure("trailing_garbage.jsonl", 2, "");
}

TEST(TraceReplayTest, MissingFileNamesThePath) {
  try {
    loadTrafficTraceFile(corpusPath("does_not_exist.jsonl"));
    FAIL() << "open succeeded";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does_not_exist.jsonl"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace downup::sim
