// Differential test against a recorded golden run of the pre-layering
// engine (the monolithic full-scan WormholeNetwork).
//
// The layered active-set engine is required to be a pure reorganisation:
// same arbitration winners, same RNG draw order, same RunStats bit for bit
// on a fixed seed.  These constants were recorded from the seed engine on a
// 24-switch irregular network under every routing mode (adaptive with 1 and
// 2 VCs, escape-adaptive, deterministic, misrouting, bursty traffic), and
// every comparison below is exact — EXPECT_EQ on counters, EXPECT_DOUBLE_EQ
// on derived doubles, and an FNV-1a hash over the raw channel-utilization
// bytes.  Any divergence in scheduling, arbitration or accounting shows up
// here as a hard failure, not a tolerance drift.
#include <cstdint>
#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "fault/schedule.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup {
namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t statsHash(const sim::RunStats& s) {
  std::uint64_t h = fnv1a(s.channelUtilization.data(),
                          s.channelUtilization.size() * sizeof(double));
  h ^= fnv1a(&s.avgLatency, sizeof(double));
  h ^= fnv1a(&s.avgQueueingDelay, sizeof(double));
  return h;
}

struct Golden {
  std::uint64_t packetsGenerated;
  std::uint64_t packetsEjectedMeasured;
  std::uint64_t flitsEjectedMeasured;
  double avgLatency;
  double p50Latency;
  double p99Latency;
  double avgQueueingDelay;
  double accepted;
  std::uint64_t utilHash;
};

class GoldenRunTest : public ::testing::Test {
 protected:
  GoldenRunTest() : topo_(makeTopology()), routing_(makeRouting(topo_)) {}

  static topo::Topology makeTopology() {
    util::Rng topoRng(2024);
    return topo::randomIrregular(24, {.maxPorts = 4}, topoRng);
  }

  static routing::Routing makeRouting(const topo::Topology& topo) {
    util::Rng treeRng(7);
    const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
    return core::buildDownUp(topo, ct);
  }

  static sim::SimConfig baseConfig() {
    sim::SimConfig config;
    config.packetLengthFlits = 16;
    config.warmupCycles = 500;
    config.measureCycles = 3000;
    config.seed = 12345;
    return config;
  }

  void expectGolden(const sim::SimConfig& config, double load,
                    const Golden& golden) {
    const sim::UniformTraffic traffic(topo_.nodeCount());
    const sim::RunStats stats =
        sim::simulate(routing_.table(), traffic, load, config);
    EXPECT_EQ(stats.cycles, 3500u);
    EXPECT_FALSE(stats.deadlocked);
    EXPECT_EQ(stats.packetsGenerated, golden.packetsGenerated);
    EXPECT_EQ(stats.packetsEjectedMeasured, golden.packetsEjectedMeasured);
    EXPECT_EQ(stats.flitsEjectedMeasured, golden.flitsEjectedMeasured);
    EXPECT_DOUBLE_EQ(stats.avgLatency, golden.avgLatency);
    EXPECT_DOUBLE_EQ(stats.p50Latency, golden.p50Latency);
    EXPECT_DOUBLE_EQ(stats.p99Latency, golden.p99Latency);
    EXPECT_DOUBLE_EQ(stats.avgQueueingDelay, golden.avgQueueingDelay);
    EXPECT_DOUBLE_EQ(stats.acceptedFlitsPerNodePerCycle, golden.accepted);
    EXPECT_EQ(stats.channelUtilization.size(), 96u);
    EXPECT_EQ(statsHash(stats), golden.utilHash);
    // No golden run injects faults, so the fault accounting must stay at
    // its zero defaults whether or not a schedule object is attached.
    EXPECT_EQ(stats.packetsDroppedTotal(), 0u);
    EXPECT_EQ(stats.reconfigurations, 0u);
    EXPECT_EQ(stats.reconfigCyclesTotal, 0u);
    EXPECT_TRUE(stats.reconfigRoutingVerified);
  }

  topo::Topology topo_;
  routing::Routing routing_;
};

TEST_F(GoldenRunTest, AdaptiveOneVc) {
  expectGolden(baseConfig(), 0.15,
               {799, 687, 11033, 31.842794759825328, 27.0, 88.0,
                5.3100436681222707, 0.1532361111111111, 0x7a2251f8e57ec5d0ULL});
}

TEST_F(GoldenRunTest, AdaptiveTwoVcs) {
  sim::SimConfig config = baseConfig();
  config.vcCount = 2;
  expectGolden(config, 0.15,
               {800, 689, 11066, 32.374455732946302, 29.0, 71.0,
                3.8040638606676342, 0.15369444444444444,
                0xe5290569aa583a79ULL});
}

TEST_F(GoldenRunTest, EscapeAdaptive) {
  sim::SimConfig config = baseConfig();
  config.vcCount = 2;
  config.escapeAdaptiveRouting = true;
  expectGolden(config, 0.15,
               {803, 690, 11080, 31.194202898550724, 27.0, 68.0,
                3.0362318840579712, 0.15388888888888888,
                0xf1fc63b2bde42f36ULL});
}

TEST_F(GoldenRunTest, Deterministic) {
  sim::SimConfig config = baseConfig();
  config.adaptiveSelection = false;
  expectGolden(config, 0.10,
               {546, 475, 7668, 28.89263157894737, 26.0, 66.259999999999991,
                3.3705263157894736, 0.1065, 0x156c0ae902ba9546ULL});
}

// Misrouting draws RNG on every claim attempt, so this pin also covers the
// engine path where blocked-claimant parking must stay disabled.
TEST_F(GoldenRunTest, Misroute) {
  sim::SimConfig config = baseConfig();
  config.misrouteProbability = 0.2;
  expectGolden(config, 0.10,
               {548, 477, 7663, 28.989517819706499, 26.0, 60.0,
                2.6981132075471699, 0.10643055555555556,
                0x4dd7e42fb35310ee});
}

// An attached-but-empty fault schedule must be bit-for-bit inert: the fault
// hooks in the cycle loop may never draw RNG or perturb scheduling until an
// event actually fires, so the stats match the no-schedule golden exactly.
TEST_F(GoldenRunTest, EmptyFaultScheduleIsInert) {
  const fault::FaultSchedule empty;
  sim::SimConfig config = baseConfig();
  config.faultSchedule = &empty;
  expectGolden(config, 0.15,
               {799, 687, 11033, 31.842794759825328, 27.0, 88.0,
                5.3100436681222707, 0.1532361111111111, 0x7a2251f8e57ec5d0ULL});
}

TEST_F(GoldenRunTest, BurstyTraffic) {
  sim::SimConfig config = baseConfig();
  config.burstFactor = 4.0;
  config.timelineBucketCycles = 500;
  expectGolden(config, 0.10,
               {488, 443, 7140, 33.778781038374717, 29.0, 69.159999999999968,
                8.516930022573364, 0.099166666666666667,
                0x040b6564f46b5752ULL});
}

}  // namespace
}  // namespace downup
