// Dynamic fault injection and online reconfiguration in the engine: mid-run
// link/node failures must trigger a verified routing rebuild, every generated
// packet must end up ejected or explicitly dropped (no hangs), transient
// flaps must heal, and fault runs must stay deterministic at any thread
// count of a surrounding sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/downup_routing.hpp"
#include "fault/schedule.hpp"
#include "sim/network.hpp"
#include "sim/traffic.hpp"
#include "stats/sweep.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace downup::sim {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : topo_(makeTopology()), routing_(makeRouting(topo_)) {}

  static topo::Topology makeTopology() {
    util::Rng rng(2024);
    return topo::randomIrregular(24, {.maxPorts = 4}, rng);
  }

  static routing::Routing makeRouting(const topo::Topology& topo) {
    util::Rng treeRng(7);
    const auto ct = tree::CoordinatedTree::build(
        topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
    return core::buildDownUp(topo, ct);
  }

  SimConfig faultConfig(const fault::FaultSchedule& schedule) const {
    SimConfig config;
    config.packetLengthFlits = 16;
    config.warmupCycles = 500;
    config.measureCycles = 3000;
    config.seed = 12345;
    config.reconfigLatencyCycles = 100;
    config.faultSchedule = &schedule;
    return config;
  }

  /// Runs warmup+measure, drains, and checks the conservation law: every
  /// packet that entered the network is eventually ejected or explicitly
  /// dropped (injection-policy drops never entered packetsGenerated).
  RunStats runAndDrain(const SimConfig& config, double load) {
    const UniformTraffic traffic(topo_.nodeCount());
    WormholeNetwork net(routing_.table(), traffic, load, config);
    net.run();
    EXPECT_TRUE(net.drainRemaining(100000)) << "network failed to drain";
    EXPECT_FALSE(net.deadlocked());
    const RunStats stats = net.collectStats();
    EXPECT_EQ(stats.packetsGenerated,
              net.packetsEjected() + stats.packetsDroppedInFlight +
                  stats.packetsDroppedUnreachable);
    return stats;
  }

  topo::Topology topo_;
  routing::Routing routing_;
};

TEST_F(FaultInjectionTest, MidRunLinkFailureReconfiguresAndDelivers) {
  const auto schedule =
      fault::FaultSchedule::randomLinkFailures(topo_, 1, 1000, 1, 5);
  ASSERT_EQ(schedule.size(), 1u);
  const RunStats stats = runAndDrain(faultConfig(schedule), 0.15);

  EXPECT_EQ(stats.reconfigurations, 1u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  EXPECT_GE(stats.reconfigCyclesTotal, 100u);  // the configured latency
  // The generator avoided partitioning, so the degraded network stays
  // connected and only the quarantine drops worms.
  EXPECT_EQ(stats.unreachablePairsAfterReconfig, 0u);
  EXPECT_EQ(stats.packetsDroppedUnreachable, 0u);
  EXPECT_EQ(stats.packetsDroppedInjection, 0u);  // kPark default
  EXPECT_GT(stats.packetsGenerated, 0u);
}

TEST_F(FaultInjectionTest, MultipleFailuresEachReconfigure) {
  const auto schedule =
      fault::FaultSchedule::randomLinkFailures(topo_, 3, 800, 500, 9);
  ASSERT_EQ(schedule.size(), 3u);
  const RunStats stats = runAndDrain(faultConfig(schedule), 0.12);

  // 500 cycles between failures > the 100-cycle window: three swaps.
  EXPECT_EQ(stats.reconfigurations, 3u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  EXPECT_EQ(stats.unreachablePairsAfterReconfig, 0u);
}

TEST_F(FaultInjectionTest, DropPolicyCountsInjectionDrops) {
  const auto schedule =
      fault::FaultSchedule::randomLinkFailures(topo_, 1, 1000, 1, 5);
  SimConfig config = faultConfig(schedule);
  config.faultInjectionPolicy = fault::InjectionPolicy::kDrop;
  const RunStats stats = runAndDrain(config, 0.15);

  EXPECT_EQ(stats.reconfigurations, 1u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  // 24 nodes at 0.15/16 packets/cycle over a 100-cycle window: some
  // generation attempts must have landed in the window and been discarded.
  EXPECT_GT(stats.packetsDroppedInjection, 0u);
}

TEST_F(FaultInjectionTest, NodeFailureQuarantinesAndDropsUnreachable) {
  fault::FaultSchedule schedule;
  schedule.nodeDown(1000, 3);
  const RunStats stats = runAndDrain(faultConfig(schedule), 0.15);

  EXPECT_EQ(stats.reconfigurations, 1u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  // Uniform traffic keeps drawing the dead switch as a destination; those
  // packets are discarded at generation or at the source front.
  EXPECT_GT(stats.packetsDroppedUnreachable, 0u);
}

TEST_F(FaultInjectionTest, LinkFlapHealsWithOneSwap) {
  const auto probe =
      fault::FaultSchedule::randomLinkFailures(topo_, 1, 0, 1, 5);
  const topo::LinkId link = probe.events()[0].id;
  fault::FaultSchedule schedule;
  schedule.linkFlap(1000, link, 40);  // back up inside the 100-cycle window
  const RunStats stats = runAndDrain(faultConfig(schedule), 0.15);

  // The up event extends the open window rather than opening a second one,
  // so a single swap lands on the fully healed topology.
  EXPECT_EQ(stats.reconfigurations, 1u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  EXPECT_EQ(stats.unreachablePairsAfterReconfig, 0u);
  EXPECT_EQ(stats.packetsDroppedUnreachable, 0u);
}

TEST_F(FaultInjectionTest, SeparateFlapsSwapTwice) {
  const auto probe =
      fault::FaultSchedule::randomLinkFailures(topo_, 1, 0, 1, 5);
  const topo::LinkId link = probe.events()[0].id;
  fault::FaultSchedule schedule;
  schedule.linkFlap(1000, link, 600);  // recovery well past the first swap
  const RunStats stats = runAndDrain(faultConfig(schedule), 0.15);

  EXPECT_EQ(stats.reconfigurations, 2u);
  EXPECT_TRUE(stats.reconfigRoutingVerified);
  // The second swap restored the full topology.
  EXPECT_EQ(stats.unreachablePairsAfterReconfig, 0u);
}

TEST_F(FaultInjectionTest, FaultSweepIsIdenticalAcrossThreadCounts) {
  const auto schedule =
      fault::FaultSchedule::randomLinkFailures(topo_, 2, 800, 600, 13);
  SimConfig config = faultConfig(schedule);
  const UniformTraffic traffic(topo_.nodeCount());
  const std::vector<double> loads = {0.05, 0.10, 0.15};
  const stats::SweepOptions options{.stopAtSaturation = false};

  const auto serial = stats::runSweep(routing_.table(), traffic, loads,
                                      config, options, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = stats::runSweep(routing_.table(), traffic, loads,
                                        config, options, &pool);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const RunStats& a = serial[i].stats;
    const RunStats& b = parallel[i].stats;
    EXPECT_EQ(a.packetsGenerated, b.packetsGenerated);
    EXPECT_EQ(a.packetsEjectedMeasured, b.packetsEjectedMeasured);
    EXPECT_EQ(a.packetsDroppedInFlight, b.packetsDroppedInFlight);
    EXPECT_EQ(a.packetsDroppedInjection, b.packetsDroppedInjection);
    EXPECT_EQ(a.packetsDroppedUnreachable, b.packetsDroppedUnreachable);
    EXPECT_EQ(a.reconfigurations, b.reconfigurations);
    EXPECT_EQ(a.reconfigCyclesTotal, b.reconfigCyclesTotal);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.acceptedFlitsPerNodePerCycle,
                     b.acceptedFlitsPerNodePerCycle);
    ASSERT_EQ(a.channelUtilization.size(), b.channelUtilization.size());
    for (std::size_t c = 0; c < a.channelUtilization.size(); ++c) {
      EXPECT_DOUBLE_EQ(a.channelUtilization[c], b.channelUtilization[c]);
    }
  }
}

}  // namespace
}  // namespace downup::sim
