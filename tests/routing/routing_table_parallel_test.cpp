// The parallel routing-table build contract: RoutingTable::build over a
// worker pool is bit-for-bit identical to the serial build at any thread
// count, on any topology.  The serial path (pool == nullptr or one
// thread) runs the historical single-pass successor-index algorithm while
// multi-thread pools take the two-phase count/fill CSR path, so comparing
// thread counts 1 and 4 also cross-checks the two algorithms against each
// other.  A golden fingerprint pins the layout itself: if either path, or
// the CSR encoding, silently changes, the pin moves.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/downup_routing.hpp"
#include "routing/routing_table.hpp"
#include "topology/generate.hpp"
#include "util/thread_pool.hpp"

namespace downup {
namespace {

routing::TurnPermissions makePerms(topo::NodeId switches, unsigned ports,
                                   std::uint64_t seed) {
  util::Rng topoRng(seed);
  // Leaked on purpose: TurnPermissions keeps a reference to the topology
  // and gtest processes exit immediately after the assertions.
  auto* topo = new topo::Topology(
      topo::randomIrregular(switches, {.maxPorts = ports}, topoRng));
  util::Rng treeRng(seed + 1);
  const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
      *topo, tree::TreePolicy::kM1SmallestFirst, treeRng);
  routing::TurnPermissions perms(*topo, routing::classifyDownUp(*topo, ct),
                                 core::downUpTurnSet());
  core::repairTurnCycles(perms);
  core::releaseRedundantProhibitions(perms);
  return perms;
}

TEST(RoutingTableParallelTest, OneVsFourThreadsIdenticalAcrossSizes) {
  util::ThreadPool one(1);
  util::ThreadPool four(4);
  for (const topo::NodeId switches : {32u, 64u, 128u}) {
    for (const unsigned ports : {4u, 8u}) {
      SCOPED_TRACE(testing::Message()
                   << switches << " switches, " << ports << " ports");
      const routing::TurnPermissions perms =
          makePerms(switches, ports, 1000 + switches);
      const routing::RoutingTable serial = routing::RoutingTable::build(perms);
      const routing::RoutingTable viaOne =
          routing::RoutingTable::build(perms, &one);
      const routing::RoutingTable viaFour =
          routing::RoutingTable::build(perms, &four);
      EXPECT_TRUE(serial.identicalTo(viaOne));
      EXPECT_TRUE(serial.identicalTo(viaFour));
      EXPECT_EQ(serial.fingerprint(), viaFour.fingerprint());
    }
  }
}

TEST(RoutingTableParallelTest, MaskedBuildIdenticalAcrossThreadCounts) {
  const routing::TurnPermissions perms = makePerms(64, 4, 77);
  const topo::Topology& topo = perms.topology();
  std::vector<std::uint64_t> alive((topo.channelCount() + 63) / 64, 0);
  for (topo::ChannelId c = 0; c < topo.channelCount(); ++c) {
    alive[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
  // Kill a couple of links (both channel directions each).
  for (const topo::ChannelId dead : {2u, 3u, 40u, 41u}) {
    alive[dead >> 6] &= ~(std::uint64_t{1} << (dead & 63));
  }
  util::ThreadPool four(4);
  const routing::RoutingTable serial =
      routing::RoutingTable::build(perms, nullptr, alive);
  const routing::RoutingTable parallel =
      routing::RoutingTable::build(perms, &four, alive);
  EXPECT_TRUE(serial.identicalTo(parallel));
  // The masked build must differ from the unmasked one (the dead links
  // carried traffic in this topology).
  EXPECT_FALSE(serial.identicalTo(routing::RoutingTable::build(perms)));
}

// Golden pin: the 32-switch / 4-port reference table's fingerprint.  This
// moves only if the construction algorithm, the CSR layout or the FNV
// fold change — all of which are observable contract changes that golden
// sim runs depend on.  Update the constant deliberately when one of those
// changes on purpose.
TEST(RoutingTableParallelTest, FingerprintGoldenPin) {
  const routing::TurnPermissions perms = makePerms(32, 4, 1032);
  const routing::RoutingTable table = routing::RoutingTable::build(perms);
  const std::uint64_t pinned = table.fingerprint();
  EXPECT_NE(pinned, 0u);
  util::ThreadPool four(4);
  EXPECT_EQ(routing::RoutingTable::build(perms, &four).fingerprint(), pinned);
  // The pinned value itself, recorded from the first Release build.  See
  // the comment above before editing.
  EXPECT_EQ(pinned, UINT64_C(0x408230be4b824ecc));
}

}  // namespace
}  // namespace downup
