#include "routing/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/downup_routing.hpp"
#include "routing/cdg.hpp"
#include "topology/generate.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

Routing sampleRouting(const Topology& topo) {
  util::Rng rng(3);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, rng);
  return core::buildDownUp(topo, ct);
}

TEST(RoutingSerialize, RoundTripPreservesTheRelation) {
  util::Rng rng(2);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  const Routing original = sampleRouting(topo);

  std::stringstream buffer;
  saveRouting(original, buffer);
  const Routing restored = loadRouting(topo, buffer);

  EXPECT_EQ(restored.name(), original.name());
  const auto& a = original.permissions();
  const auto& b = restored.permissions();
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    EXPECT_EQ(a.dir(c), b.dir(c));
  }
  EXPECT_EQ(a.global(), b.global());
  EXPECT_EQ(a.releaseCount(), b.releaseCount());
  EXPECT_EQ(a.blockCount(), b.blockCount());
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      EXPECT_EQ(original.table().distance(s, d),
                restored.table().distance(s, d));
    }
  }
  EXPECT_TRUE(checkChannelDependencies(b).acyclic);
}

TEST(RoutingSerialize, FileRoundTrip) {
  const Topology topo = topo::paperFigure1();
  const Routing original = sampleRouting(topo);
  const std::string path = ::testing::TempDir() + "/downup_routing_test.txt";
  saveRoutingFile(original, path);
  const Routing restored = loadRoutingFile(topo, path);
  EXPECT_EQ(restored.table().averagePathLength(),
            original.table().averagePathLength());
}

TEST(RoutingSerialize, RejectsChannelCountMismatch) {
  const Topology topo = topo::paperFigure1();
  const Routing original = sampleRouting(topo);
  std::stringstream buffer;
  saveRouting(original, buffer);
  const Topology other = topo::ring(8);
  EXPECT_THROW(loadRouting(other, buffer), std::runtime_error);
}

TEST(RoutingSerialize, RejectsMalformedInput) {
  const Topology topo = topo::ring(4);
  {
    std::istringstream in("not-a-routing\n");
    EXPECT_THROW(loadRouting(topo, in), std::runtime_error);
  }
  {
    std::istringstream in("downup-routing v1\ndir 0 LU_TREE\n");
    EXPECT_THROW(loadRouting(topo, in), std::runtime_error);  // dir before channels
  }
  {
    std::istringstream in(
        "downup-routing v1\nchannels 8\ndir 0 NOT_A_DIRECTION\n");
    EXPECT_THROW(loadRouting(topo, in), std::runtime_error);
  }
  {
    std::istringstream in(
        "downup-routing v1\nchannels 8\nrelease 99 LU_CROSS RD_TREE\n");
    EXPECT_THROW(loadRouting(topo, in), std::runtime_error);  // bad node
  }
  {
    std::istringstream in("downup-routing v1\n");
    EXPECT_THROW(loadRouting(topo, in), std::runtime_error);  // no channels
  }
}

TEST(DirFromString, ParsesEveryDirection) {
  for (std::size_t i = 0; i < kDirCount; ++i) {
    const Dir d = static_cast<Dir>(i);
    EXPECT_EQ(dirFromString(toString(d)), d);
  }
  EXPECT_THROW(dirFromString("NORTH"), std::invalid_argument);
}

TEST(ExportSwitchConfig, ListsEveryPortPair) {
  const Topology topo = topo::paperFigure1();
  const Routing routing = sampleRouting(topo);
  std::ostringstream out;
  exportSwitchConfig(routing, 0, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("switch 0"), std::string::npos);
  // Node 0 (v1) has 3 neighbors: 2, 3, 4.
  EXPECT_NE(text.find("->2"), std::string::npos);
  EXPECT_NE(text.find("->3"), std::string::npos);
  EXPECT_NE(text.find("->4"), std::string::npos);
  EXPECT_NE(text.find("<-2"), std::string::npos);
}

}  // namespace
}  // namespace downup::routing
