// Span hooks in the construction pipeline are inert: an attached recorder
// never changes what gets built.  Instrumented RoutingTable::build,
// rebuildDead and the full buildDownUp pipeline must produce bit-for-bit
// the tables their uninstrumented twins produce (the recorder only reads
// the clock — it never draws RNG or alters scheduling).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/downup_routing.hpp"
#include "routing/routing_table.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"
#include "util/span_recorder.hpp"
#include "util/thread_pool.hpp"

namespace downup::routing {
namespace {

struct Fixture {
  Fixture() : topo(makeTopology()), ct(makeTree(topo)) {}

  static topo::Topology makeTopology() {
    util::Rng rng(2024);
    return topo::randomIrregular(32, {.maxPorts = 4}, rng);
  }
  static tree::CoordinatedTree makeTree(const topo::Topology& topo) {
    util::Rng rng(7);
    return tree::CoordinatedTree::build(topo,
                                        tree::TreePolicy::kM1SmallestFirst,
                                        rng);
  }

  topo::Topology topo;
  tree::CoordinatedTree ct;
};

TEST(SpanInertTest, InstrumentedBuildMatchesPlainBuildSerialAndParallel) {
  const Fixture f;
  const routing::Routing plain = core::buildDownUp(f.topo, f.ct);
  const TurnPermissions& perms = plain.permissions();

  util::SpanRecorder spans;
  const RoutingTable serial = RoutingTable::build(perms, nullptr, {}, &spans);
  EXPECT_TRUE(serial.identicalTo(plain.table()));

  util::ThreadPool pool(4);
  const RoutingTable parallel = RoutingTable::build(perms, &pool, {}, &spans);
  EXPECT_TRUE(parallel.identicalTo(plain.table()));

  // The recorder saw both builds and annotated them (32 destinations is
  // below the parallel cutover, so both report the serial path — the point
  // here is inertness, not scheduling).
  const auto all = spans.snapshot();
  std::size_t builds = 0;
  for (const auto& s : all) {
    if (std::strcmp(s.name, "table_build") != 0) continue;
    ++builds;
    bool sawDestinations = false;
    for (std::uint8_t a = 0; a < s.argCount; ++a) {
      if (std::strcmp(s.args[a].key, "destinations") == 0 &&
          s.args[a].value == 32.0) {
        sawDestinations = true;
      }
    }
    EXPECT_TRUE(sawDestinations);
  }
  EXPECT_EQ(builds, 2u);
}

TEST(SpanInertTest, CountersAndAllocTrackingLeaveTheBuildBitForBit) {
  const Fixture f;
  const routing::Routing plain = core::buildDownUp(f.topo, f.ct);

  // Fully armed recorder: a live counter group (whatever subset of events
  // this environment opens) plus allocation tracking.  Neither may change
  // what gets built — counters only read fds, attribution only reads
  // thread-locals.
  util::PerfCounterGroup group;
  util::SpanRecorder spans;
  spans.attachCounters(&group);
  spans.setAllocTracking(true);
  const routing::Routing counted =
      core::buildDownUp(f.topo, f.ct, {.spans = &spans});
  EXPECT_TRUE(counted.table().identicalTo(plain.table()));
  EXPECT_EQ(counted.table().fingerprint(), plain.table().fingerprint());

  ASSERT_GT(spans.size(), 0u);
  for (const auto& s : spans.snapshot()) {
    // Tracking is flagged on every span; this binary does not install the
    // global-new hooks, so charges stay zero — visible as "hooks absent",
    // never as silent success.
    EXPECT_TRUE(s.allocTracked);
    EXPECT_EQ(s.allocBytes, 0u);
    // Counter payloads mirror exactly what the environment granted.
    if (group.available()) {
      EXPECT_EQ(s.counters.mask, group.eventMask());
    } else {
      EXPECT_TRUE(s.counters.empty());
    }
  }

  // Forced-disabled group: same build, spans carry no counter payload.
  util::PerfCounterGroup off(
      util::PerfCounterGroup::Options{.disabled = true});
  util::SpanRecorder offSpans;
  offSpans.attachCounters(&off);
  const routing::Routing untouched =
      core::buildDownUp(f.topo, f.ct, {.spans = &offSpans});
  EXPECT_EQ(untouched.table().fingerprint(), plain.table().fingerprint());
  for (const auto& s : offSpans.snapshot()) {
    EXPECT_TRUE(s.counters.empty());
  }
}

TEST(SpanInertTest, InstrumentedRebuildDeadMatchesPlainRebuild) {
  const Fixture f;
  const routing::Routing plain = core::buildDownUp(f.topo, f.ct);

  // Kill one link's both channels and rebuild incrementally from the
  // healthy table, with and without a recorder.
  std::vector<std::uint64_t> alive((f.topo.channelCount() + 63) / 64, 0);
  for (topo::ChannelId c = 0; c < f.topo.channelCount(); ++c) {
    alive[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
  const topo::ChannelId dead = 4;
  alive[dead >> 6] &= ~(std::uint64_t{1} << (dead & 63));
  const topo::ChannelId dead2 = dead ^ 1;
  alive[dead2 >> 6] &= ~(std::uint64_t{1} << (dead2 & 63));

  const RoutingTable expected =
      RoutingTable::rebuildDead(plain.table(), nullptr, alive);
  util::SpanRecorder spans;
  const RoutingTable actual = RoutingTable::rebuildDead(
      plain.table(), nullptr, alive, nullptr, &spans);
  EXPECT_TRUE(actual.identicalTo(expected));
  EXPECT_GT(spans.size(), 0u);
}

TEST(SpanInertTest, InstrumentedDownUpPipelineMatchesPlainPipeline) {
  const Fixture f;
  const routing::Routing plain = core::buildDownUp(f.topo, f.ct);

  util::SpanRecorder spans;
  const routing::Routing traced =
      core::buildDownUp(f.topo, f.ct, {.spans = &spans});
  EXPECT_TRUE(traced.table().identicalTo(plain.table()));
  EXPECT_EQ(traced.table().fingerprint(), plain.table().fingerprint());

  // classify/repair/release/table_build all reported in.
  std::size_t classify = 0, repair = 0, release = 0, build = 0;
  for (const auto& s : spans.snapshot()) {
    if (std::strcmp(s.name, "classify") == 0) ++classify;
    if (std::strcmp(s.name, "repair") == 0) ++repair;
    if (std::strcmp(s.name, "release") == 0) ++release;
    if (std::strcmp(s.name, "table_build") == 0) ++build;
  }
  EXPECT_EQ(classify, 1u);
  EXPECT_EQ(repair, 1u);
  EXPECT_EQ(release, 1u);
  EXPECT_EQ(build, 1u);
}

}  // namespace
}  // namespace downup::routing
