#include "routing/routing_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/direction.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {
namespace {

tree::CoordinatedTree m1Tree(const Topology& topo) {
  util::Rng rng(1);
  return tree::CoordinatedTree::build(topo,
                                      tree::TreePolicy::kM1SmallestFirst, rng);
}

TEST(RoutingTable, LineDistancesMatchGraphDistances) {
  const Topology topo = topo::line(6);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  for (NodeId s = 0; s < 6; ++s) {
    for (NodeId d = 0; d < 6; ++d) {
      EXPECT_EQ(table.distance(s, d), (s > d ? s - d : d - s));
    }
  }
  EXPECT_TRUE(table.allPairsConnected());
}

TEST(RoutingTable, DistanceToSelfIsZero) {
  const Topology topo = topo::ring(4);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(table.distance(v, v), 0u);
}

TEST(RoutingTable, UpDownOnRingForcesDetours) {
  // Ring 0-1-2-3-4-0 with up*/down* rooted at 0: 2 -> 4 cannot take the
  // 2-hop route (its second hop is a prohibited down->up turn) and must go
  // up through the root instead (3 hops).
  const Topology topo = topo::ring(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  EXPECT_TRUE(table.allPairsConnected());
  EXPECT_EQ(table.distance(2, 4), 3u);
  bool sawStretch = false;
  for (NodeId s = 0; s < 5; ++s) {
    const auto graphDist = topo::bfsDistances(topo, s);
    for (NodeId d = 0; d < 5; ++d) {
      if (s == d) continue;
      EXPECT_GE(table.distance(s, d), graphDist[d]);
      if (table.distance(s, d) > graphDist[d]) sawStretch = true;
    }
  }
  EXPECT_TRUE(sawStretch) << "expected at least one non-minimal legal path";
}

TEST(RoutingTable, PermissiveDistancesEqualGraphDistances) {
  util::Rng rng(5);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const RoutingTable table = RoutingTable::build(perms);
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    const auto dist = topo::bfsDistances(topo, s);
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s != d) {
        EXPECT_EQ(table.distance(s, d), dist[d]);
      }
    }
  }
}

TEST(RoutingTable, FirstChannelsAreMinimalStarts) {
  const Topology topo = topo::ring(6);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const RoutingTable table = RoutingTable::build(perms);
  std::vector<ChannelId> firsts;
  table.firstChannels(0, 3, firsts);  // both ways around are 3 hops
  EXPECT_EQ(firsts.size(), 2u);
  for (ChannelId c : firsts) {
    EXPECT_EQ(topo.channelSrc(c), 0u);
    EXPECT_EQ(table.channelSteps(3, c), 3u);
  }

  firsts.clear();
  table.firstChannels(0, 1, firsts);  // unique shortest
  ASSERT_EQ(firsts.size(), 1u);
  EXPECT_EQ(topo.channelDst(firsts[0]), 1u);
}

TEST(RoutingTable, FirstChannelsEmptyForSelf) {
  const Topology topo = topo::ring(4);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  std::vector<ChannelId> firsts;
  table.firstChannels(2, 2, firsts);
  EXPECT_TRUE(firsts.empty());
}

TEST(RoutingTable, NextChannelsDecrementStepsByOne) {
  util::Rng rng(9);
  const Topology topo = topo::randomIrregular(20, {.maxPorts = 4}, rng);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);

  std::vector<ChannelId> firsts;
  std::vector<ChannelId> nexts;
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      firsts.clear();
      table.firstChannels(s, d, firsts);
      ASSERT_FALSE(firsts.empty()) << s << " to " << d;
      for (ChannelId c : firsts) {
        // Walk one full minimal path greedily and confirm steps decrease
        // by exactly one per hop until the destination is reached.
        ChannelId current = c;
        std::uint16_t remaining = table.channelSteps(d, current);
        while (topo.channelDst(current) != d) {
          nexts.clear();
          table.nextChannels(current, d, nexts);
          ASSERT_FALSE(nexts.empty());
          for (ChannelId n : nexts) {
            EXPECT_EQ(table.channelSteps(d, n), remaining - 1);
            EXPECT_TRUE(perms.allowed(topo.channelDst(current), current, n));
          }
          current = nexts.front();
          --remaining;
        }
        EXPECT_EQ(remaining, 1u);
      }
    }
  }
}

TEST(RoutingTable, NextChannelsEmptyAtDestination) {
  const Topology topo = topo::line(3);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  std::vector<ChannelId> nexts;
  table.nextChannels(topo.channel(0, 1), 1, nexts);
  EXPECT_TRUE(nexts.empty());
}

TEST(RoutingTable, DetectsDisconnection) {
  // Block every turn except same-direction: on a star with up*/down*
  // everything still works (all paths are up then down)...
  const Topology topo = topo::star(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable okTable = RoutingTable::build(perms);
  EXPECT_TRUE(okTable.allPairsConnected());

  // ...but blocking the hub's turning ability disconnects leaf pairs.
  TurnPermissions broken(topo, classifyUpDown(topo, m1Tree(topo)),
                         upDownTurnSet());
  broken.blockAt(0, Dir::kLuTree, Dir::kRdTree);
  const RoutingTable brokenTable = RoutingTable::build(broken);
  EXPECT_FALSE(brokenTable.allPairsConnected());
  EXPECT_EQ(brokenTable.distance(1, 2), kNoPath);
  EXPECT_NE(brokenTable.distance(1, 0), kNoPath);
}

TEST(RoutingTable, NextChannelsAnyTurnIgnoresTurnRuleOnly) {
  // Ring 0-1-2-3-4 with up*/down*: 2 -> 4 has legal distance 3 (via the
  // root) because 3 -> 4 would be a prohibited down->up turn.  The
  // any-turn relation follows the same legal-steps potential, so it offers
  // exactly the outputs one potential step closer — including ones the turn
  // rule forbids.
  const Topology topo = topo::ring(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);

  const ChannelId c12 = topo.channel(1, 2);
  std::vector<ChannelId> legal;
  std::vector<ChannelId> any;
  table.nextChannels(c12, 0, legal);
  table.nextChannelsAnyTurn(c12, 0, any);
  // Toward the root both relations agree here.
  for (ChannelId c : any) {
    EXPECT_EQ(table.channelSteps(0, c), table.channelSteps(0, c12) - 1);
    EXPECT_NE(c, Topology::reverseChannel(c12));
  }
  // The any-turn set is always a superset of the legal set.
  for (ChannelId c : legal) {
    EXPECT_NE(std::find(any.begin(), any.end(), c), any.end());
  }

  // On a richer network the superset is strict somewhere: some
  // potential-decrementing successor is turn-prohibited (it lies on a legal
  // path for packets that arrive from a different direction).
  util::Rng rng(6);
  const Topology big = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  TurnPermissions bigPerms(big, classifyUpDown(big, m1Tree(big)),
                           upDownTurnSet());
  const RoutingTable bigTable = RoutingTable::build(bigPerms);
  bool strictSomewhere = false;
  for (ChannelId in = 0; in < big.channelCount() && !strictSomewhere; ++in) {
    for (NodeId dst = 0; dst < big.nodeCount(); ++dst) {
      if (big.channelDst(in) == dst || big.channelSrc(in) == dst) continue;
      legal.clear();
      any.clear();
      bigTable.nextChannels(in, dst, legal);
      bigTable.nextChannelsAnyTurn(in, dst, any);
      EXPECT_GE(any.size(), legal.size());
      if (any.size() > legal.size()) {
        strictSomewhere = true;
        break;
      }
    }
  }
  EXPECT_TRUE(strictSomewhere);
}

TEST(RoutingTable, NextChannelsAnyTurnEmptyAtDestination) {
  const Topology topo = topo::line(3);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  const RoutingTable table = RoutingTable::build(perms);
  std::vector<ChannelId> any;
  table.nextChannelsAnyTurn(topo.channel(0, 1), 1, any);
  EXPECT_TRUE(any.empty());
}

TEST(RoutingTable, AveragePathLengthOnCompleteGraph) {
  const Topology topo = topo::complete(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const RoutingTable table = RoutingTable::build(perms);
  EXPECT_DOUBLE_EQ(table.averagePathLength(), 1.0);
}

}  // namespace
}  // namespace downup::routing
