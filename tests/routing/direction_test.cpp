#include "routing/direction.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

/// The Figure 1(c) coordinated tree (ids: v1..v5 -> 0..4).
CoordinatedTree figure1Tree(const Topology& topo) {
  const std::vector<NodeId> parents = {topo::kInvalidNode, 4, 0, 0, 0};
  const std::vector<std::uint32_t> rank = {0, 2, 3, 4, 1};
  return CoordinatedTree::fromParents(topo, parents, 0, rank);
}

TEST(ClassifyDownUp, Figure1DirectionsMatchThePaper) {
  const Topology topo = topo::paperFigure1();
  const CoordinatedTree ct = figure1Tree(topo);
  const DirectionMap dirs = classifyDownUp(topo, ct);

  // Section 3's worked examples: d(<v2,v4>) = RU_CROSS, d(<v5,v2>) = RD_TREE.
  EXPECT_EQ(dirs[topo.channel(1, 3)], Dir::kRuCross);
  EXPECT_EQ(dirs[topo.channel(4, 1)], Dir::kRdTree);

  // The Figure 1(d) turn cycle channels: <v5,v1> LU_TREE, <v1,v3> RD_TREE,
  // <v3,v5> L_CROSS.
  EXPECT_EQ(dirs[topo.channel(4, 0)], Dir::kLuTree);
  EXPECT_EQ(dirs[topo.channel(0, 2)], Dir::kRdTree);
  EXPECT_EQ(dirs[topo.channel(2, 4)], Dir::kLCross);

  // Reverse channels get the opposite directions.
  EXPECT_EQ(dirs[topo.channel(3, 1)], Dir::kLdCross);
  EXPECT_EQ(dirs[topo.channel(1, 4)], Dir::kLuTree);
  EXPECT_EQ(dirs[topo.channel(0, 4)], Dir::kRdTree);
  EXPECT_EQ(dirs[topo.channel(2, 0)], Dir::kLuTree);
  EXPECT_EQ(dirs[topo.channel(4, 2)], Dir::kRCross);
}

Dir opposite(Dir d) {
  switch (d) {
    case Dir::kLuTree: return Dir::kRdTree;
    case Dir::kRdTree: return Dir::kLuTree;
    case Dir::kLuCross: return Dir::kRdCross;
    case Dir::kRdCross: return Dir::kLuCross;
    case Dir::kRuCross: return Dir::kLdCross;
    case Dir::kLdCross: return Dir::kRuCross;
    case Dir::kRCross: return Dir::kLCross;
    case Dir::kLCross: return Dir::kRCross;
  }
  return d;
}

struct ClassifyCase {
  topo::NodeId nodes;
  unsigned ports;
  std::uint64_t seed;
};

class ClassifierLawsTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifierLawsTest, ReverseChannelsHaveOppositeDirections) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = topo::randomIrregular(nodes, {.maxPorts = ports}, rng);
  util::Rng treeRng(seed + 7);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM2Random, treeRng);

  for (const DirectionMap& dirs :
       {classifyDownUp(topo, ct), classifyCoordinate(topo, ct)}) {
    for (ChannelId c = 0; c < topo.channelCount(); ++c) {
      EXPECT_EQ(dirs[Topology::reverseChannel(c)], opposite(dirs[c]));
    }
  }
}

TEST_P(ClassifierLawsTest, DownUpTreeChannelsAreExactlyTreeLinks) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = topo::randomIrregular(nodes, {.maxPorts = ports}, rng);
  util::Rng treeRng(seed + 7);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const DirectionMap dirs = classifyDownUp(topo, ct);
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const bool treeDir =
        dirs[c] == Dir::kLuTree || dirs[c] == Dir::kRdTree;
    EXPECT_EQ(treeDir,
              ct.isTreeLink(topo.channelSrc(c), topo.channelDst(c)));
    if (dirs[c] == Dir::kLuTree) {
      EXPECT_EQ(ct.parent(topo.channelSrc(c)), topo.channelDst(c));
    }
  }
}

TEST_P(ClassifierLawsTest, CoordinateClassifierAgreesWithCoordinates) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = topo::randomIrregular(nodes, {.maxPorts = ports}, rng);
  util::Rng treeRng(seed + 7);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, treeRng);
  const DirectionMap dirs = classifyCoordinate(topo, ct);
  for (ChannelId c = 0; c < topo.channelCount(); ++c) {
    const NodeId v1 = topo.channelSrc(c);
    const NodeId v2 = topo.channelDst(c);
    switch (dirs[c]) {
      case Dir::kLuCross:
        EXPECT_TRUE(ct.x(v2) < ct.x(v1) && ct.y(v2) < ct.y(v1));
        break;
      case Dir::kRuCross:
        EXPECT_TRUE(ct.x(v2) > ct.x(v1) && ct.y(v2) < ct.y(v1));
        break;
      case Dir::kLdCross:
        EXPECT_TRUE(ct.x(v2) < ct.x(v1) && ct.y(v2) > ct.y(v1));
        break;
      case Dir::kRdCross:
        EXPECT_TRUE(ct.x(v2) > ct.x(v1) && ct.y(v2) > ct.y(v1));
        break;
      case Dir::kLCross:
        EXPECT_TRUE(ct.x(v2) < ct.x(v1) && ct.y(v2) == ct.y(v1));
        break;
      case Dir::kRCross:
        EXPECT_TRUE(ct.x(v2) > ct.x(v1) && ct.y(v2) == ct.y(v1));
        break;
      default:
        FAIL() << "coordinate classifier produced a tree direction";
    }
  }
}

TEST_P(ClassifierLawsTest, UpDownClassifiersProduceOnlyTwoDirections) {
  const auto [nodes, ports, seed] = GetParam();
  util::Rng rng(seed);
  const Topology topo = topo::randomIrregular(nodes, {.maxPorts = ports}, rng);
  util::Rng treeRng(seed + 7);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const tree::DfsTree dt = tree::DfsTree::build(topo);

  for (const DirectionMap& dirs :
       {classifyUpDown(topo, ct), classifyUpDownDfs(topo, dt)}) {
    for (ChannelId c = 0; c < topo.channelCount(); ++c) {
      EXPECT_TRUE(dirs[c] == Dir::kLuTree || dirs[c] == Dir::kRdTree);
      // Exactly one orientation of every link is "up".
      const Dir rev = dirs[Topology::reverseChannel(c)];
      EXPECT_NE(dirs[c], rev);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ClassifierLawsTest,
                         ::testing::Values(ClassifyCase{12, 3, 1},
                                           ClassifyCase{32, 4, 2},
                                           ClassifyCase{64, 8, 3},
                                           ClassifyCase{128, 4, 4}));

TEST(DirNames, AreStable) {
  EXPECT_EQ(toString(Dir::kLuTree), "LU_TREE");
  EXPECT_EQ(toString(Dir::kRdTree), "RD_TREE");
  EXPECT_EQ(toString(Dir::kLCross), "L_CROSS");
  EXPECT_EQ(toString(Dir::kRdCross), "RD_CROSS");
}

TEST(IsUpCross, OnlyTheTwoAscendingCrossDirections) {
  EXPECT_TRUE(isUpCross(Dir::kLuCross));
  EXPECT_TRUE(isUpCross(Dir::kRuCross));
  EXPECT_FALSE(isUpCross(Dir::kLuTree));
  EXPECT_FALSE(isUpCross(Dir::kLdCross));
  EXPECT_FALSE(isUpCross(Dir::kRCross));
}

}  // namespace
}  // namespace downup::routing
