#include <gtest/gtest.h>

#include <set>

#include "core/downup_routing.hpp"
#include "routing/path_analysis.hpp"
#include "topology/generate.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

Routing permissiveOn(const Topology& topo) {
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  TurnPermissions perms(topo, classifyUpDown(topo, ct),
                        TurnSet::allAllowed());
  return Routing("permissive", std::move(perms));
}

bool isValidPath(const RoutingTable& table, NodeId src, NodeId dst,
                 const std::vector<ChannelId>& path) {
  const Topology& topo = table.topology();
  if (path.empty() || topo.channelSrc(path.front()) != src ||
      topo.channelDst(path.back()) != dst) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId via = topo.channelDst(path[i]);
    if (via != topo.channelSrc(path[i + 1])) return false;
    if (!table.permissions().allowed(via, path[i], path[i + 1])) return false;
  }
  return path.size() == table.distance(src, dst);
}

TEST(SamplePath, ProducesAMinimalLegalPath) {
  util::Rng rng(3);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(4);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  util::Rng pathRng(5);
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s == d) continue;
      const auto path = samplePath(routing.table(), s, d, &pathRng);
      EXPECT_TRUE(isValidPath(routing.table(), s, d, path))
          << s << " -> " << d;
    }
  }
}

TEST(SamplePath, EmptyForSelfAndDeterministicWithoutRng) {
  const Topology topo = topo::ring(6);
  const Routing routing = permissiveOn(topo);
  EXPECT_TRUE(samplePath(routing.table(), 2, 2).empty());
  const auto a = samplePath(routing.table(), 0, 3);
  const auto b = samplePath(routing.table(), 0, 3);
  EXPECT_EQ(a, b);
}

TEST(EnumerateMinimalPaths, RingOppositePairHasTwo) {
  const Topology topo = topo::ring(4);
  const Routing routing = permissiveOn(topo);
  const auto paths = enumerateMinimalPaths(routing.table(), 0, 2);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0], paths[1]);
  for (const auto& path : paths) {
    EXPECT_TRUE(isValidPath(routing.table(), 0, 2, path));
  }
}

TEST(EnumerateMinimalPaths, MeshCornerToCornerMatchesBinomial) {
  const Topology topo = topo::mesh(3, 3);
  const Routing routing = permissiveOn(topo);
  const auto paths = enumerateMinimalPaths(routing.table(), 0, 8);
  EXPECT_EQ(paths.size(), 6u);  // C(4, 2)
  std::set<std::vector<ChannelId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(EnumerateMinimalPaths, CountsMatchThePathAnalysisDp) {
  util::Rng rng(9);
  const Topology topo = topo::randomIrregular(16, {.maxPorts = 4}, rng);
  util::Rng treeRng(10);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  const PathAnalysis analysis = analyzePaths(routing.table());
  const NodeId n = topo.nodeCount();
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      const auto paths =
          enumerateMinimalPaths(routing.table(), s, d, 10000);
      EXPECT_DOUBLE_EQ(static_cast<double>(paths.size()),
                       analysis.pathCount[s * n + d])
          << s << " -> " << d;
    }
  }
}

TEST(EnumerateMinimalPaths, LimitTruncates) {
  const Topology topo = topo::mesh(4, 4);
  const Routing routing = permissiveOn(topo);
  const auto paths = enumerateMinimalPaths(routing.table(), 0, 15, 3);
  EXPECT_EQ(paths.size(), 3u);
  EXPECT_TRUE(enumerateMinimalPaths(routing.table(), 0, 15, 0).empty());
}

}  // namespace
}  // namespace downup::routing
