#include "routing/leftright.hpp"

#include <gtest/gtest.h>

#include "routing/verify.hpp"
#include "topology/generate.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

TEST(LeftRightTurnSet, ProhibitsExactlyRightToLeft) {
  const TurnSet set = leftRightTurnSet();
  EXPECT_EQ(set.prohibitedCount(), 9u);
  for (Dir right : {Dir::kRuCross, Dir::kRCross, Dir::kRdCross}) {
    for (Dir left : {Dir::kLuCross, Dir::kLCross, Dir::kLdCross}) {
      EXPECT_FALSE(set.isAllowed(right, left));
      EXPECT_TRUE(set.isAllowed(left, right));
    }
  }
  // Within-class turns stay open.
  EXPECT_TRUE(set.isAllowed(Dir::kRuCross, Dir::kRdCross));
  EXPECT_TRUE(set.isAllowed(Dir::kLdCross, Dir::kLuCross));
}

TEST(LeftRight, SoundAndLiveAcrossRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(
        40, {.maxPorts = static_cast<unsigned>(3 + seed % 6)}, rng);
    util::Rng treeRng(seed + 77);
    const TreePolicy policy = static_cast<TreePolicy>(seed % 3);
    const CoordinatedTree ct = CoordinatedTree::build(topo, policy, treeRng);
    const Routing routing = buildLeftRight(topo, ct);
    const VerifyReport report = verifyRouting(routing);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.describe();
  }
}

TEST(LeftRight, TreePathsSurvive) {
  // On a star every route is leaf -> hub -> leaf: LU then RD, which
  // Left/Right permits (left before right).
  const Topology topo = topo::star(8);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing routing = buildLeftRight(topo, ct);
  for (NodeId s = 1; s < 8; ++s) {
    for (NodeId d = 1; d < 8; ++d) {
      if (s != d) {
        EXPECT_EQ(routing.table().distance(s, d), 2u);
      }
    }
  }
}

TEST(LeftRight, NameIsStable) {
  const Topology topo = topo::ring(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  EXPECT_EQ(buildLeftRight(topo, ct).name(), "leftright");
}

}  // namespace
}  // namespace downup::routing
