#include "routing/path_analysis.hpp"

#include <gtest/gtest.h>

#include "core/downup_routing.hpp"
#include "routing/updown.hpp"
#include "topology/generate.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

Routing permissiveOn(const Topology& topo) {
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  TurnPermissions perms(topo, classifyUpDown(topo, ct),
                        TurnSet::allAllowed());
  return Routing("permissive", std::move(perms));
}

TEST(PathAnalysis, LineLoadsAreExact) {
  // Line 0-1-2-3: every pair has exactly one path.  Channel 1->2 carries
  // the pairs (0,2), (0,3), (1,2), (1,3): expected load 4.
  const Topology topo = topo::line(4);
  const Routing routing = permissiveOn(topo);
  const PathAnalysis analysis = analyzePaths(routing.table());

  EXPECT_DOUBLE_EQ(analysis.expectedLoad[topo.channel(1, 2)], 4.0);
  EXPECT_DOUBLE_EQ(analysis.expectedLoad[topo.channel(2, 1)], 4.0);
  EXPECT_DOUBLE_EQ(analysis.expectedLoad[topo.channel(0, 1)], 3.0);
  EXPECT_DOUBLE_EQ(analysis.expectedLoad[topo.channel(3, 2)], 3.0);
  EXPECT_DOUBLE_EQ(analysis.meanPathCount, 1.0);
  EXPECT_DOUBLE_EQ(analysis.maxLoad, 4.0);
}

TEST(PathAnalysis, TotalLoadEqualsSumOfPathLengths) {
  // Conservation: sum over channels of expected load == sum over ordered
  // pairs of legal distance (each pair contributes one channel-visit per
  // hop, split across paths but summing to its distance).
  util::Rng rng(5);
  const Topology topo = topo::randomIrregular(24, {.maxPorts = 4}, rng);
  util::Rng treeRng(6);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing routing = core::buildDownUp(topo, ct);
  const PathAnalysis analysis = analyzePaths(routing.table());

  double loadSum = 0.0;
  for (double load : analysis.expectedLoad) loadSum += load;
  double distSum = 0.0;
  for (NodeId s = 0; s < topo.nodeCount(); ++s) {
    for (NodeId d = 0; d < topo.nodeCount(); ++d) {
      if (s != d) distSum += routing.table().distance(s, d);
    }
  }
  EXPECT_NEAR(loadSum, distSum, 1e-6);
}

TEST(PathAnalysis, RingPathCounts) {
  // 4-ring with all turns allowed: opposite nodes have 2 minimal paths,
  // neighbors 1.
  const Topology topo = topo::ring(4);
  const Routing routing = permissiveOn(topo);
  const PathAnalysis analysis = analyzePaths(routing.table());
  const auto count = [&](NodeId s, NodeId d) {
    return analysis.pathCount[s * 4 + d];
  };
  EXPECT_DOUBLE_EQ(count(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(count(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(count(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(count(3, 2), 1.0);
  // Channel 0->1 carries (0,1) fully plus half of each opposite pair that
  // can route through it: 0.5 of (0,2) and 0.5 of (3,1) = 2.0 total.
  EXPECT_DOUBLE_EQ(analysis.expectedLoad[topo.channel(0, 1)], 2.0);
}

TEST(PathAnalysis, MeshPathCountsAreBinomial) {
  // In a mesh with all turns allowed, (0,0) -> (2,2) has C(4,2) = 6 minimal
  // paths.
  const Topology topo = topo::mesh(3, 3);
  const Routing routing = permissiveOn(topo);
  const PathAnalysis analysis = analyzePaths(routing.table());
  EXPECT_DOUBLE_EQ(analysis.pathCount[0 * 9 + 8], 6.0);
  EXPECT_DOUBLE_EQ(analysis.pathCount[0 * 9 + 4], 2.0);
}

TEST(PathAnalysis, TurnRestrictionsReducePathCounts) {
  util::Rng rng(9);
  const Topology topo = topo::randomIrregular(32, {.maxPorts = 4}, rng);
  util::Rng treeRng(10);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, treeRng);
  const Routing restricted = core::buildDownUp(topo, ct);
  const Routing permissive = permissiveOn(topo);
  const PathAnalysis a = analyzePaths(restricted.table());
  const PathAnalysis b = analyzePaths(permissive.table());
  EXPECT_LE(a.meanPathCount, b.meanPathCount);
}

TEST(AverageAdaptivity, SingleChoiceOnALine) {
  const Topology topo = topo::line(5);
  const Routing routing = permissiveOn(topo);
  EXPECT_DOUBLE_EQ(averageAdaptivity(routing.table()), 1.0);
}

TEST(AverageAdaptivity, TwoChoicesForOppositeRingPairs) {
  const Topology topo = topo::ring(4);
  const Routing routing = permissiveOn(topo);
  // Of the 12 ordered pairs, 4 are opposite (2 choices), 8 neighbors (1).
  EXPECT_NEAR(averageAdaptivity(routing.table()), (4 * 2 + 8 * 1) / 12.0,
              1e-12);
}

}  // namespace
}  // namespace downup::routing
