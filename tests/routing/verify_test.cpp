#include "routing/verify.hpp"

#include <gtest/gtest.h>

#include "routing/updown.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

CoordinatedTree m1Tree(const Topology& topo) {
  util::Rng rng(1);
  return CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
}

TEST(VerifyRouting, HealthyRoutingPassesWithExactDiagnostics) {
  const Topology topo = topo::complete(5);
  const Routing routing = buildUpDown(topo, m1Tree(topo));
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.cycleWitness.empty());
  EXPECT_EQ(report.unreachablePairs, 0u);
  // Complete graph: every legal path is the direct link.
  EXPECT_DOUBLE_EQ(report.averagePathLength, 1.0);
  EXPECT_DOUBLE_EQ(report.averageStretch, 1.0);
  EXPECT_DOUBLE_EQ(report.maxStretch, 1.0);
}

TEST(VerifyRouting, CyclicPermissionsAreReported) {
  const Topology topo = topo::ring(5);
  const CoordinatedTree ct = m1Tree(topo);
  TurnPermissions perms(topo, classifyUpDown(topo, ct),
                        TurnSet::allAllowed());
  const Routing routing("broken", std::move(perms));
  const VerifyReport report = verifyRouting(routing);
  EXPECT_FALSE(report.deadlockFree);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.cycleWitness.size(), 3u);
  // The ring with all turns is still connected though.
  EXPECT_TRUE(report.connected);
}

TEST(VerifyRouting, DisconnectionIsCounted) {
  const Topology topo = topo::star(5);
  const CoordinatedTree ct = m1Tree(topo);
  TurnPermissions perms(topo, classifyUpDown(topo, ct), upDownTurnSet());
  perms.blockAt(0, Dir::kLuTree, Dir::kRdTree);  // hub may not turn
  const Routing routing("cut", std::move(perms));
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.deadlockFree);
  EXPECT_FALSE(report.connected);
  // 4 leaves, ordered pairs among them: 12 unreachable.
  EXPECT_EQ(report.unreachablePairs, 12u);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyRouting, StretchReflectsDetours) {
  const Topology topo = topo::ring(5);
  const Routing routing = buildUpDown(topo, m1Tree(topo));
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.ok());
  // 2 -> 4 detours 3 hops instead of 2 (see routing_table_test).
  EXPECT_GT(report.maxStretch, 1.0);
  EXPECT_GE(report.averageStretch, 1.0);
  EXPECT_LE(report.averageStretch, report.maxStretch);
  EXPECT_GE(report.averagePathLength, topo::averageDistance(topo));
}

TEST(VerifyReportDescribe, MentionsTheImportantBits) {
  const Topology topo = topo::ring(5);
  const Routing good = buildUpDown(topo, m1Tree(topo));
  const std::string healthy = verifyRouting(good).describe();
  EXPECT_NE(healthy.find("deadlock-free"), std::string::npos);
  EXPECT_NE(healthy.find("connected"), std::string::npos);

  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const Routing bad("bad", std::move(perms));
  const std::string broken = verifyRouting(bad).describe();
  EXPECT_NE(broken.find("CYCLE"), std::string::npos);
}

}  // namespace
}  // namespace downup::routing
