#include "routing/mesh_turn.hpp"

#include <gtest/gtest.h>

#include "routing/cdg.hpp"
#include "routing/path_analysis.hpp"
#include "routing/verify.hpp"
#include "sim/engine.hpp"
#include "topology/generate.hpp"

namespace downup::routing {
namespace {

TEST(ClassifyMesh, GeographicDirectionsAreCorrect) {
  const Topology topo = topo::mesh(3, 3);
  const DirectionMap dirs = classifyMesh(topo, 3, 3);
  // Node 4 is the center (1,1).
  EXPECT_EQ(dirs[topo.channel(4, 5)], Dir::kRCross);   // east
  EXPECT_EQ(dirs[topo.channel(4, 3)], Dir::kLCross);   // west
  EXPECT_EQ(dirs[topo.channel(4, 1)], Dir::kLuCross);  // north
  EXPECT_EQ(dirs[topo.channel(4, 7)], Dir::kRdCross);  // south
}

TEST(ClassifyMesh, RejectsNonMeshInput) {
  EXPECT_THROW(classifyMesh(topo::mesh(3, 3), 4, 3), std::invalid_argument);
  EXPECT_THROW(classifyMesh(topo::torus(4, 4), 4, 4), std::invalid_argument);
  EXPECT_THROW(classifyMesh(topo::ring(9), 3, 3), std::invalid_argument);
}

constexpr MeshTurnModel kAllModels[] = {
    MeshTurnModel::kWestFirst, MeshTurnModel::kNorthLast,
    MeshTurnModel::kNegativeFirst, MeshTurnModel::kXY};

class MeshTurnModelTest : public ::testing::TestWithParam<MeshTurnModel> {};

TEST_P(MeshTurnModelTest, SoundLiveAndMinimalOnMeshes) {
  for (const auto& [w, h] : {std::pair<topo::NodeId, topo::NodeId>{4, 4},
                             {5, 3}, {2, 6}, {8, 8}}) {
    const Topology topo = topo::mesh(w, h);
    const Routing routing = buildMeshRouting(topo, w, h, GetParam());
    const VerifyReport report = verifyRouting(routing);
    EXPECT_TRUE(report.ok())
        << toString(GetParam()) << " on " << w << "x" << h << ": "
        << report.describe();
    // Mesh turn-model routing is always minimal: legal distance ==
    // Manhattan distance for every pair.
    for (NodeId s = 0; s < topo.nodeCount(); ++s) {
      for (NodeId d = 0; d < topo.nodeCount(); ++d) {
        const auto manhattan =
            static_cast<std::uint16_t>(std::abs(static_cast<int>(s % w) -
                                                static_cast<int>(d % w)) +
                                       std::abs(static_cast<int>(s / w) -
                                                static_cast<int>(d / w)));
        EXPECT_EQ(routing.table().distance(s, d), manhattan);
      }
    }
  }
}

TEST_P(MeshTurnModelTest, SurvivesSaturationStress) {
  const Topology topo = topo::mesh(5, 5);
  const Routing routing = buildMeshRouting(topo, 5, 5, GetParam());
  sim::SimConfig config;
  config.packetLengthFlits = 32;
  config.warmupCycles = 500;
  config.measureCycles = 6000;
  config.deadlockThresholdCycles = 2500;
  const sim::UniformTraffic traffic(topo.nodeCount());
  const sim::RunStats stats =
      sim::simulate(routing.table(), traffic, 0.9, config);
  EXPECT_FALSE(stats.deadlocked) << toString(GetParam());
  EXPECT_GT(stats.flitsEjectedMeasured, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, MeshTurnModelTest,
                         ::testing::ValuesIn(kAllModels));

TEST(MeshTurnModels, ProhibitedCountsMatchGlassNi) {
  EXPECT_EQ(meshTurnSet(MeshTurnModel::kWestFirst).prohibitedCount(), 2u);
  EXPECT_EQ(meshTurnSet(MeshTurnModel::kNorthLast).prohibitedCount(), 2u);
  EXPECT_EQ(meshTurnSet(MeshTurnModel::kNegativeFirst).prohibitedCount(), 2u);
  EXPECT_EQ(meshTurnSet(MeshTurnModel::kXY).prohibitedCount(), 4u);
}

TEST(MeshTurnModels, XyIsDeterministicOthersArePartiallyAdaptive) {
  const Topology topo = topo::mesh(5, 5);
  const Routing xy = buildMeshRouting(topo, 5, 5, MeshTurnModel::kXY);
  EXPECT_DOUBLE_EQ(averageAdaptivity(xy.table()), 1.0)
      << "dimension-order routing has exactly one minimal legal first hop";
  for (MeshTurnModel model :
       {MeshTurnModel::kWestFirst, MeshTurnModel::kNorthLast,
        MeshTurnModel::kNegativeFirst}) {
    const Routing routing = buildMeshRouting(topo, 5, 5, model);
    EXPECT_GT(averageAdaptivity(routing.table()), 1.0) << toString(model);
  }
}

TEST(MeshTurnModels, WestFirstReallyGoesWestFirst) {
  // Every minimal legal path of west-first routing takes all of its west
  // hops before any other direction.
  const Topology topo = topo::mesh(4, 4);
  const Routing routing =
      buildMeshRouting(topo, 4, 4, MeshTurnModel::kWestFirst);
  const auto& perms = routing.permissions();
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      for (const auto& path :
           enumerateMinimalPaths(routing.table(), s, d, 200)) {
        bool leftWestPhase = false;
        for (ChannelId c : path) {
          if (perms.dir(c) == Dir::kLCross) {
            EXPECT_FALSE(leftWestPhase) << "west hop after non-west hop";
          } else {
            leftWestPhase = true;
          }
        }
      }
    }
  }
}

TEST(MeshTurnModels, PermissiveMeshWouldBeCyclic) {
  // Control: the turn prohibitions are what break the mesh cycles.
  const Topology topo = topo::mesh(3, 3);
  TurnPermissions perms(topo, classifyMesh(topo, 3, 3),
                        TurnSet::allAllowed());
  EXPECT_FALSE(checkChannelDependencies(perms).acyclic);
}

TEST(MeshTurnModels, NamesAreStable) {
  EXPECT_EQ(toString(MeshTurnModel::kWestFirst), "west-first");
  EXPECT_EQ(toString(MeshTurnModel::kNorthLast), "north-last");
  EXPECT_EQ(toString(MeshTurnModel::kNegativeFirst), "negative-first");
  EXPECT_EQ(toString(MeshTurnModel::kXY), "xy");
}

}  // namespace
}  // namespace downup::routing
