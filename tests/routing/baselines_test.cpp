#include <gtest/gtest.h>

#include "routing/lturn.hpp"
#include "routing/updown.hpp"
#include "routing/verify.hpp"
#include "topology/generate.hpp"
#include "topology/properties.hpp"

namespace downup::routing {
namespace {

using tree::CoordinatedTree;
using tree::TreePolicy;

struct BaselineCase {
  topo::NodeId nodes;
  unsigned ports;
  std::uint64_t seed;
  TreePolicy policy;
};

class BaselineVerifyTest : public ::testing::TestWithParam<BaselineCase> {
 protected:
  void SetUp() override {
    const auto& param = GetParam();
    util::Rng rng(param.seed);
    topo_ = std::make_unique<Topology>(
        topo::randomIrregular(param.nodes, {.maxPorts = param.ports}, rng));
    util::Rng treeRng(param.seed + 31);
    tree_ = std::make_unique<CoordinatedTree>(
        CoordinatedTree::build(*topo_, param.policy, treeRng));
  }

  std::unique_ptr<Topology> topo_;
  std::unique_ptr<CoordinatedTree> tree_;
};

TEST_P(BaselineVerifyTest, UpDownBfsIsSoundAndLive) {
  const Routing routing = buildUpDown(*topo_, *tree_);
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.deadlockFree) << report.describe();
  EXPECT_TRUE(report.connected) << report.describe();
  EXPECT_GE(report.averageStretch, 1.0);
}

TEST_P(BaselineVerifyTest, UpDownDfsIsSoundAndLive) {
  const Routing routing = buildUpDownDfs(*topo_, tree_->root());
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.deadlockFree) << report.describe();
  EXPECT_TRUE(report.connected) << report.describe();
}

TEST_P(BaselineVerifyTest, LturnIsSoundAndLive) {
  const Routing routing = buildLTurn(*topo_, *tree_);
  const VerifyReport report = verifyRouting(routing);
  EXPECT_TRUE(report.deadlockFree) << report.describe();
  EXPECT_TRUE(report.connected) << report.describe();
  EXPECT_GE(report.averageStretch, 1.0);
  EXPECT_GE(report.averagePathLength, topo::averageDistance(*topo_));
}

INSTANTIATE_TEST_SUITE_P(
    RandomNetworks, BaselineVerifyTest,
    ::testing::Values(BaselineCase{12, 3, 1, TreePolicy::kM1SmallestFirst},
                      BaselineCase{24, 4, 2, TreePolicy::kM1SmallestFirst},
                      BaselineCase{24, 4, 2, TreePolicy::kM2Random},
                      BaselineCase{24, 4, 2, TreePolicy::kM3LargestFirst},
                      BaselineCase{48, 4, 3, TreePolicy::kM1SmallestFirst},
                      BaselineCase{48, 8, 4, TreePolicy::kM2Random},
                      BaselineCase{64, 4, 5, TreePolicy::kM3LargestFirst},
                      BaselineCase{96, 8, 6, TreePolicy::kM1SmallestFirst},
                      BaselineCase{128, 4, 7, TreePolicy::kM2Random},
                      BaselineCase{128, 8, 8, TreePolicy::kM3LargestFirst}));

TEST(Baselines, NamesAreStable) {
  const Topology topo = topo::ring(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  EXPECT_EQ(buildUpDown(topo, ct).name(), "updown-bfs");
  EXPECT_EQ(buildUpDownDfs(topo).name(), "updown-dfs");
  EXPECT_EQ(buildLTurn(topo, ct).name(), "lturn");
}

TEST(Baselines, LturnConnectivityOnRegularTopologies) {
  util::Rng rng(1);
  for (const Topology& topo :
       {topo::ring(8), topo::mesh(4, 4), topo::torus(4, 4), topo::hypercube(4),
        topo::star(9), topo::complete(6)}) {
    const CoordinatedTree ct =
        CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
    const Routing routing = buildLTurn(topo, ct);
    const VerifyReport report = verifyRouting(routing);
    EXPECT_TRUE(report.ok()) << report.describe();
  }
}

TEST(Baselines, UpDownDfsSpreadsPathsDifferentlyThanBfs) {
  // Not a strict ordering claim — just confirm the two variants are not the
  // same routing on a topology where DFS and BFS trees differ.
  const Topology topo = topo::ring(8);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const Routing bfs = buildUpDown(topo, ct);
  const Routing dfs = buildUpDownDfs(topo);
  bool differs = false;
  for (NodeId s = 0; s < 8 && !differs; ++s) {
    for (NodeId d = 0; d < 8 && !differs; ++d) {
      if (bfs.table().distance(s, d) != dfs.table().distance(s, d)) {
        differs = true;
      }
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace downup::routing
