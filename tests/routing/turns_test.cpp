#include "routing/turns.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {
namespace {

TEST(TurnSet, AllAllowedHasNoProhibitions) {
  const TurnSet set = TurnSet::allAllowed();
  EXPECT_EQ(set.prohibitedCount(), 0u);
  EXPECT_TRUE(set.prohibitedList().empty());
  for (std::size_t i = 0; i < kDirCount; ++i) {
    for (std::size_t j = 0; j < kDirCount; ++j) {
      EXPECT_TRUE(set.isAllowed(static_cast<Dir>(i), static_cast<Dir>(j)));
    }
  }
}

TEST(TurnSet, ProhibitAndAllowRoundTrip) {
  TurnSet set = TurnSet::allAllowed();
  set.prohibit(Dir::kRdTree, Dir::kLuTree);
  EXPECT_FALSE(set.isAllowed(Dir::kRdTree, Dir::kLuTree));
  EXPECT_TRUE(set.isAllowed(Dir::kLuTree, Dir::kRdTree));
  EXPECT_EQ(set.prohibitedCount(), 1u);
  set.allow(Dir::kRdTree, Dir::kLuTree);
  EXPECT_EQ(set.prohibitedCount(), 0u);
}

TEST(TurnSet, SameDirectionAlwaysAllowed) {
  TurnSet set = TurnSet::allAllowed();
  set.prohibit(Dir::kLCross, Dir::kLCross);  // recorded but overridden
  EXPECT_TRUE(set.isAllowed(Dir::kLCross, Dir::kLCross));
}

TEST(TurnSet, ProhibitedListInRowMajorOrder) {
  TurnSet set = TurnSet::allAllowed();
  set.prohibit(Dir::kRCross, Dir::kLuTree);
  set.prohibit(Dir::kLuTree, Dir::kRCross);
  const auto list = set.prohibitedList();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (std::pair{Dir::kLuTree, Dir::kRCross}));
  EXPECT_EQ(list[1], (std::pair{Dir::kRCross, Dir::kLuTree}));
}

TEST(NamedTurnSets, UpDownProhibitsExactlyDownToUp) {
  const TurnSet set = upDownTurnSet();
  EXPECT_EQ(set.prohibitedCount(), 1u);
  EXPECT_FALSE(set.isAllowed(Dir::kRdTree, Dir::kLuTree));
  EXPECT_TRUE(set.isAllowed(Dir::kLuTree, Dir::kRdTree));
}

TEST(NamedTurnSets, LturnProhibitsNineTurns) {
  const TurnSet set = lturnTurnSet();
  EXPECT_EQ(set.prohibitedCount(), 9u);
  // down -> up
  EXPECT_FALSE(set.isAllowed(Dir::kLdCross, Dir::kLuCross));
  EXPECT_FALSE(set.isAllowed(Dir::kRdCross, Dir::kRuCross));
  // horizontal -> up
  EXPECT_FALSE(set.isAllowed(Dir::kLCross, Dir::kRuCross));
  EXPECT_FALSE(set.isAllowed(Dir::kRCross, Dir::kLuCross));
  // same-level tie break
  EXPECT_FALSE(set.isAllowed(Dir::kLCross, Dir::kRCross));
  EXPECT_TRUE(set.isAllowed(Dir::kRCross, Dir::kLCross));
  // up -> anything and anything -> down stay open
  EXPECT_TRUE(set.isAllowed(Dir::kLuCross, Dir::kRdCross));
  EXPECT_TRUE(set.isAllowed(Dir::kRCross, Dir::kLdCross));
}

class TurnPermissionsTest : public ::testing::Test {
 protected:
  TurnPermissionsTest()
      : topo_(topo::ring(4)),
        tree_([this] {
          util::Rng rng(1);
          return tree::CoordinatedTree::build(
              topo_, tree::TreePolicy::kM1SmallestFirst, rng);
        }()) {}

  Topology topo_;
  tree::CoordinatedTree tree_;
};

TEST_F(TurnPermissionsTest, RejectsMismatchedDirectionMap) {
  EXPECT_THROW(TurnPermissions(topo_, DirectionMap(3, Dir::kLuTree),
                               TurnSet::allAllowed()),
               std::invalid_argument);
}

TEST_F(TurnPermissionsTest, UturnAlwaysForbidden) {
  TurnPermissions perms(topo_, classifyUpDown(topo_, tree_),
                        TurnSet::allAllowed());
  const ChannelId in = topo_.channel(0, 1);
  const ChannelId back = topo_.channel(1, 0);
  EXPECT_FALSE(perms.allowed(1, in, back));
}

TEST_F(TurnPermissionsTest, ReleaseOverridesGlobalProhibition) {
  TurnPermissions perms(topo_, classifyUpDown(topo_, tree_),
                        upDownTurnSet());
  // Find a down->up turn somewhere and release it at that node only.
  // On the 4-ring rooted at 0 such a turn exists at the level-2 node.
  ChannelId in = kInvalidChannel;
  ChannelId out = kInvalidChannel;
  for (ChannelId c = 0; c < topo_.channelCount() && in == kInvalidChannel;
       ++c) {
    if (perms.dir(c) != Dir::kRdTree) continue;
    for (ChannelId o : topo_.outputChannels(topo_.channelDst(c))) {
      if (o != Topology::reverseChannel(c) && perms.dir(o) == Dir::kLuTree) {
        in = c;
        out = o;
        break;
      }
    }
  }
  ASSERT_NE(in, kInvalidChannel) << "no down->up turn found on the ring";
  const NodeId via = topo_.channelDst(in);

  EXPECT_FALSE(perms.allowed(via, in, out));
  perms.releaseAt(via, Dir::kRdTree, Dir::kLuTree);
  EXPECT_TRUE(perms.allowed(via, in, out));
  EXPECT_EQ(perms.releaseCount(), 1u);
  // Other nodes are unaffected.
  EXPECT_FALSE(perms.isReleasedAt((via + 1) % 4, Dir::kRdTree, Dir::kLuTree));
  perms.revokeReleaseAt(via, Dir::kRdTree, Dir::kLuTree);
  EXPECT_FALSE(perms.allowed(via, in, out));
  EXPECT_EQ(perms.releaseCount(), 0u);
}

TEST_F(TurnPermissionsTest, BlockOverridesEverything) {
  TurnPermissions perms(topo_, classifyUpDown(topo_, tree_),
                        TurnSet::allAllowed());
  // Pick any legal (in, out) pair through node 2.
  ChannelId in = kInvalidChannel;
  ChannelId out = kInvalidChannel;
  for (ChannelId c : topo_.outputChannels(2)) {
    const ChannelId candidateIn = Topology::reverseChannel(c);
    for (ChannelId o : topo_.outputChannels(2)) {
      if (o != c) {
        in = candidateIn;
        out = o;
      }
    }
  }
  ASSERT_NE(in, kInvalidChannel);
  ASSERT_TRUE(perms.allowed(2, in, out));
  perms.blockAt(2, perms.dir(in), perms.dir(out));
  EXPECT_FALSE(perms.allowed(2, in, out));
  EXPECT_TRUE(perms.isBlockedAt(2, perms.dir(in), perms.dir(out)));
  EXPECT_EQ(perms.blockCount(), 1u);
  // A release does not beat a block.
  perms.releaseAt(2, perms.dir(in), perms.dir(out));
  EXPECT_FALSE(perms.allowed(2, in, out));
}

TEST_F(TurnPermissionsTest, SameDirectionContinuationAllowedByDefault) {
  // On a ring with up*/down* labels there are consecutive same-direction
  // channels; they must be traversable.
  TurnPermissions perms(topo_, classifyUpDown(topo_, tree_),
                        upDownTurnSet());
  bool sawSameDir = false;
  for (ChannelId c = 0; c < topo_.channelCount(); ++c) {
    const NodeId via = topo_.channelDst(c);
    for (ChannelId o : topo_.outputChannels(via)) {
      if (o == Topology::reverseChannel(c)) continue;
      if (perms.dir(o) == perms.dir(c)) {
        EXPECT_TRUE(perms.allowed(via, c, o));
        sawSameDir = true;
      }
    }
  }
  EXPECT_TRUE(sawSameDir);
}

}  // namespace
}  // namespace downup::routing
