#include "routing/cdg.hpp"

#include <gtest/gtest.h>

#include "routing/direction.hpp"
#include "topology/generate.hpp"
#include "tree/coordinated_tree.hpp"

namespace downup::routing {
namespace {

tree::CoordinatedTree m1Tree(const Topology& topo) {
  util::Rng rng(1);
  return tree::CoordinatedTree::build(topo,
                                      tree::TreePolicy::kM1SmallestFirst, rng);
}

TEST(Cdg, RingWithAllTurnsAllowedIsCyclic) {
  const Topology topo = topo::ring(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const CdgResult result = checkChannelDependencies(perms);
  EXPECT_FALSE(result.acyclic);
  ASSERT_GE(result.cycle.size(), 3u);
  // The witness is a real dependency cycle: consecutive channels chain and
  // every turn is allowed.
  for (std::size_t i = 0; i < result.cycle.size(); ++i) {
    const ChannelId c = result.cycle[i];
    const ChannelId n = result.cycle[(i + 1) % result.cycle.size()];
    EXPECT_EQ(topo.channelDst(c), topo.channelSrc(n));
    EXPECT_TRUE(perms.allowed(topo.channelDst(c), c, n));
  }
}

TEST(Cdg, RingWithUpDownRuleIsAcyclic) {
  const Topology topo = topo::ring(5);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        upDownTurnSet());
  EXPECT_TRUE(checkChannelDependencies(perms).acyclic);
}

TEST(Cdg, TreeTopologyIsAcyclicEvenWithAllTurns) {
  // A tree has no cycles at all, so even the permissive rule is safe.
  const Topology topo = topo::star(8);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  EXPECT_TRUE(checkChannelDependencies(perms).acyclic);
}

TEST(Cdg, TorusWithAllTurnsAllowedIsCyclic) {
  const Topology topo = topo::torus(4, 4);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  EXPECT_FALSE(checkChannelDependencies(perms).acyclic);
}

TEST(Cdg, UpDownIsAcyclicOnManyTopologies) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const Topology topo = topo::randomIrregular(
        30, {.maxPorts = static_cast<unsigned>(3 + seed % 4)}, rng);
    TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                          upDownTurnSet());
    EXPECT_TRUE(checkChannelDependencies(perms).acyclic) << "seed " << seed;
  }
}

TEST(ChannelReachable, FollowsAllowedTurnsOnly) {
  const Topology topo = topo::line(4);  // 0-1-2-3
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const ChannelId c01 = topo.channel(0, 1);
  const ChannelId c12 = topo.channel(1, 2);
  const ChannelId c23 = topo.channel(2, 3);
  const ChannelId c10 = topo.channel(1, 0);
  EXPECT_TRUE(channelReachable(perms, c01, c12));
  EXPECT_TRUE(channelReachable(perms, c01, c23));
  // U-turn exclusion means the reverse channel is unreachable on a line.
  EXPECT_FALSE(channelReachable(perms, c01, c10));
  // Self-reachability requires a genuine cycle; a line has none.
  EXPECT_FALSE(channelReachable(perms, c01, c01));
}

TEST(ChannelReachable, SelfReachableOnPermissiveRing) {
  const Topology topo = topo::ring(4);
  TurnPermissions perms(topo, classifyUpDown(topo, m1Tree(topo)),
                        TurnSet::allAllowed());
  const ChannelId c01 = topo.channel(0, 1);
  EXPECT_TRUE(channelReachable(perms, c01, c01));
}

}  // namespace
}  // namespace downup::routing
