// runExperiment must produce identical results at any thread count: every
// simulation is an independent fixed-seed run, samples and load points fan
// out across the work-sharing pool, and aggregation folds in a fixed order.
// This compares a serial run against a 4-thread run field by field.
#include <gtest/gtest.h>

#include "stats/experiment.hpp"

namespace downup::stats {
namespace {

ExperimentConfig smallConfig(unsigned threads) {
  ExperimentConfig config;
  config.portConfigs = {4};
  config.switches = 16;
  config.samples = 3;
  config.sim.warmupCycles = 300;
  config.sim.measureCycles = 1500;
  config.loadPoints = 5;
  config.threads = threads;
  return config;
}

void expectSameStat(const util::RunningStat& a, const util::RunningStat& b) {
  ASSERT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  if (a.count() > 0) {
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
  }
}

TEST(ExperimentDeterminismTest, SerialAndParallelRunsAreIdentical) {
  const ExperimentResults serial = runExperiment(smallConfig(1));
  const ExperimentResults parallel = runExperiment(smallConfig(4));

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const Cell& a = serial.cells[i];
    const Cell& b = parallel.cells[i];
    ASSERT_EQ(a.ports, b.ports);
    ASSERT_EQ(a.policy, b.policy);
    ASSERT_EQ(a.algorithm, b.algorithm);

    expectSameStat(a.nodeUtilization, b.nodeUtilization);
    expectSameStat(a.trafficLoad, b.trafficLoad);
    expectSameStat(a.hotspotPercent, b.hotspotPercent);
    expectSameStat(a.leafUtilization, b.leafUtilization);
    expectSameStat(a.maxAccepted, b.maxAccepted);
    expectSameStat(a.zeroLoadLatency, b.zeroLoadLatency);
    expectSameStat(a.avgPathLength, b.avgPathLength);

    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (std::size_t p = 0; p < a.curve.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.curve[p].offeredLoad, b.curve[p].offeredLoad);
      expectSameStat(a.curve[p].accepted, b.curve[p].accepted);
      expectSameStat(a.curve[p].latency, b.curve[p].latency);
    }
  }
}

}  // namespace
}  // namespace downup::stats
