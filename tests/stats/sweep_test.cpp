#include "stats/sweep.hpp"

#include <gtest/gtest.h>

#include "routing/updown.hpp"
#include "topology/generate.hpp"

namespace downup::stats {
namespace {

TEST(LoadGrid, EvenlySpacedEndingAtHi) {
  const auto loads = loadGrid(0.4, 4);
  ASSERT_EQ(loads.size(), 4u);
  EXPECT_DOUBLE_EQ(loads[0], 0.1);
  EXPECT_DOUBLE_EQ(loads[1], 0.2);
  EXPECT_DOUBLE_EQ(loads[2], 0.3);
  EXPECT_DOUBLE_EQ(loads[3], 0.4);
}

TEST(LoadGrid, RejectsBadArguments) {
  EXPECT_THROW(loadGrid(0.0, 4), std::invalid_argument);
  EXPECT_THROW(loadGrid(0.4, 0), std::invalid_argument);
}

TEST(FindSaturation, PicksThePeak) {
  std::vector<SweepPoint> sweep(4);
  for (std::size_t i = 0; i < 4; ++i) {
    sweep[i].offeredLoad = 0.1 * static_cast<double>(i + 1);
  }
  sweep[0].stats.acceptedFlitsPerNodePerCycle = 0.10;
  sweep[1].stats.acceptedFlitsPerNodePerCycle = 0.18;
  sweep[2].stats.acceptedFlitsPerNodePerCycle = 0.22;
  sweep[3].stats.acceptedFlitsPerNodePerCycle = 0.21;  // past saturation
  const Saturation saturation = findSaturation(sweep);
  EXPECT_EQ(saturation.peakIndex, 2u);
  EXPECT_DOUBLE_EQ(saturation.maxAccepted, 0.22);
  EXPECT_DOUBLE_EQ(saturation.saturationLoad, 0.3);
}

TEST(FindSaturation, EmptySweep) {
  const Saturation saturation = findSaturation(std::vector<SweepPoint>{});
  EXPECT_DOUBLE_EQ(saturation.maxAccepted, 0.0);
}

class SweepSimTest : public ::testing::Test {
 protected:
  SweepSimTest()
      : topo_(topo::torus(4, 4)),
        routing_([this] {
          util::Rng rng(1);
          const tree::CoordinatedTree ct = tree::CoordinatedTree::build(
              topo_, tree::TreePolicy::kM1SmallestFirst, rng);
          return routing::buildUpDown(topo_, ct);
        }()),
        traffic_(topo_.nodeCount()) {
    config_.packetLengthFlits = 8;
    config_.warmupCycles = 500;
    config_.measureCycles = 3000;
  }

  topo::Topology topo_;
  routing::Routing routing_;
  sim::UniformTraffic traffic_;
  sim::SimConfig config_;
};

TEST_F(SweepSimTest, AcceptedIsMonotoneAtLowLoads) {
  const auto loads = loadGrid(0.09, 3);  // well below saturation
  const auto sweep =
      runSweep(routing_.table(), traffic_, loads, config_,
               {.stopAtSaturation = false});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].stats.acceptedFlitsPerNodePerCycle,
            sweep[1].stats.acceptedFlitsPerNodePerCycle);
  EXPECT_LT(sweep[1].stats.acceptedFlitsPerNodePerCycle,
            sweep[2].stats.acceptedFlitsPerNodePerCycle);
}

TEST_F(SweepSimTest, EarlyStopTruncatesPastSaturation) {
  const auto loads = loadGrid(1.0, 10);
  const auto full = runSweep(routing_.table(), traffic_, loads, config_,
                             {.stopAtSaturation = false});
  const auto stopped = runSweep(routing_.table(), traffic_, loads, config_);
  EXPECT_EQ(full.size(), 10u);
  EXPECT_LT(stopped.size(), full.size());
  // The early-stopped sweep still reaches (close to) the same peak.
  const double fullPeak = findSaturation(full).maxAccepted;
  const double stoppedPeak = findSaturation(stopped).maxAccepted;
  EXPECT_GE(stoppedPeak, fullPeak * 0.9);
}

}  // namespace
}  // namespace downup::stats
