#include "stats/experiment.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "stats/report.hpp"

namespace downup::stats {
namespace {

ExperimentConfig miniConfig() {
  ExperimentConfig config;
  config.portConfigs = {4};
  config.switches = 10;
  config.samples = 2;
  config.policies = {tree::TreePolicy::kM1SmallestFirst,
                     tree::TreePolicy::kM3LargestFirst};
  config.algorithms = {core::Algorithm::kLTurn, core::Algorithm::kDownUp};
  config.sim.packetLengthFlits = 8;
  config.sim.warmupCycles = 200;
  config.sim.measureCycles = 1500;
  config.loadPoints = 3;
  config.maxLoadPerPort = 0.05;
  config.baseSeed = 7;
  return config;
}

TEST(Experiment, ProducesEveryRequestedCell) {
  const ExperimentResults results = runExperiment(miniConfig());
  EXPECT_EQ(results.cells.size(), 1u * 2 * 2);
  for (const Cell& cell : results.cells) {
    EXPECT_EQ(cell.nodeUtilization.count(), 2u) << "one entry per sample";
    EXPECT_GT(cell.maxAccepted.mean(), 0.0);
    EXPECT_GE(cell.hotspotPercent.mean(), 0.0);
    EXPECT_LE(cell.hotspotPercent.mean(), 100.0);
    EXPECT_GE(cell.avgPathLength.mean(), 1.0);
    EXPECT_FALSE(cell.curve.empty());
  }
}

TEST(Experiment, FindLocatesCells) {
  const ExperimentResults results = runExperiment(miniConfig());
  EXPECT_NE(results.find(4, tree::TreePolicy::kM1SmallestFirst,
                         core::Algorithm::kDownUp),
            nullptr);
  EXPECT_EQ(results.find(8, tree::TreePolicy::kM1SmallestFirst,
                         core::Algorithm::kDownUp),
            nullptr);
  EXPECT_EQ(results.find(4, tree::TreePolicy::kM2Random,
                         core::Algorithm::kDownUp),
            nullptr);
}

TEST(Experiment, DeterministicForSameSeed) {
  const ExperimentResults a = runExperiment(miniConfig());
  const ExperimentResults b = runExperiment(miniConfig());
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].maxAccepted.mean(),
                     b.cells[i].maxAccepted.mean());
    EXPECT_DOUBLE_EQ(a.cells[i].nodeUtilization.mean(),
                     b.cells[i].nodeUtilization.mean());
  }
}

TEST(Experiment, ThreadCountDoesNotChangeResults) {
  ExperimentConfig serial = miniConfig();
  serial.threads = 1;
  ExperimentConfig parallel = miniConfig();
  parallel.threads = 3;
  const ExperimentResults a = runExperiment(serial);
  const ExperimentResults b = runExperiment(parallel);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cells[i].maxAccepted.mean(),
                     b.cells[i].maxAccepted.mean());
    EXPECT_DOUBLE_EQ(a.cells[i].trafficLoad.mean(),
                     b.cells[i].trafficLoad.mean());
    EXPECT_DOUBLE_EQ(a.cells[i].hotspotPercent.mean(),
                     b.cells[i].hotspotPercent.mean());
    ASSERT_EQ(a.cells[i].curve.size(), b.cells[i].curve.size());
    for (std::size_t p = 0; p < a.cells[i].curve.size(); ++p) {
      EXPECT_EQ(a.cells[i].curve[p].accepted.count(),
                b.cells[i].curve[p].accepted.count());
      EXPECT_DOUBLE_EQ(a.cells[i].curve[p].accepted.mean(),
                       b.cells[i].curve[p].accepted.mean());
    }
  }
}

TEST(Report, PaperTableMentionsEveryRowAndColumn) {
  const ExperimentResults results = runExperiment(miniConfig());
  std::ostringstream out;
  printPaperTable(out, "Table X. node utilization", results,
                  [](const Cell& cell) { return cell.nodeUtilization.mean(); });
  const std::string text = out.str();
  EXPECT_NE(text.find("Table X"), std::string::npos);
  EXPECT_NE(text.find("M1"), std::string::npos);
  EXPECT_NE(text.find("M3"), std::string::npos);
  EXPECT_NE(text.find("lturn 4p"), std::string::npos);
  EXPECT_NE(text.find("downup 4p"), std::string::npos);
}

TEST(Report, CurvesListEveryMeasuredPoint) {
  const ExperimentResults results = runExperiment(miniConfig());
  std::ostringstream out;
  printLatencyCurves(out, results);
  const std::string text = out.str();
  EXPECT_NE(text.find("# 4-port M1 lturn"), std::string::npos);
  EXPECT_NE(text.find("offered"), std::string::npos);
}

TEST(Report, CsvFilesAreWritten) {
  const ExperimentResults results = runExperiment(miniConfig());
  const std::string dir = ::testing::TempDir();
  writeCurvesCsv(results, dir + "/curves.csv");
  writeMetricsCsv(results, dir + "/metrics.csv");
  std::ifstream curves(dir + "/curves.csv");
  std::ifstream metrics(dir + "/metrics.csv");
  std::string header;
  ASSERT_TRUE(std::getline(curves, header));
  EXPECT_NE(header.find("offered_load"), std::string::npos);
  ASSERT_TRUE(std::getline(metrics, header));
  EXPECT_NE(header.find("hotspot_percent"), std::string::npos);
  int rows = 0;
  std::string line;
  while (std::getline(metrics, line)) ++rows;
  EXPECT_EQ(rows, 4);  // one per cell
}

TEST(Experiment, FixedLoadRangeIsHonoured) {
  ExperimentConfig config = miniConfig();
  config.autoLoadRange = false;
  config.maxLoadPerPort = 0.01;
  config.loadPoints = 4;
  const ExperimentResults results = runExperiment(config);
  for (const Cell& cell : results.cells) {
    ASSERT_FALSE(cell.curve.empty());
    EXPECT_EQ(cell.curve.size(), 4u);
    // Grid top = 0.01 * 4 ports.
    EXPECT_DOUBLE_EQ(cell.curve.back().offeredLoad, 0.04);
    EXPECT_DOUBLE_EQ(cell.curve.front().offeredLoad, 0.01);
  }
}

TEST(ExperimentConfig, PaperScaleMatchesThePaper) {
  const ExperimentConfig config = ExperimentConfig::paperScale();
  EXPECT_EQ(config.switches, 128u);
  EXPECT_EQ(config.samples, 10u);
  EXPECT_EQ(config.sim.packetLengthFlits, 128u);
  EXPECT_EQ(config.policies.size(), 3u);
  EXPECT_EQ(config.portConfigs, (std::vector<unsigned>{4, 8}));
}

}  // namespace
}  // namespace downup::stats
