#include "stats/compare.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace downup::stats {
namespace {

/// Builds a synthetic results object with two algorithms and hand-set
/// metric means so the verdict logic is checked exactly.
ExperimentResults syntheticResults() {
  ExperimentResults results;
  results.config.portConfigs = {4, 8};
  results.config.policies = {tree::TreePolicy::kM1SmallestFirst};
  results.config.algorithms = {core::Algorithm::kLTurn,
                               core::Algorithm::kDownUp};
  for (unsigned ports : results.config.portConfigs) {
    for (core::Algorithm algorithm : results.config.algorithms) {
      Cell cell;
      cell.ports = ports;
      cell.policy = tree::TreePolicy::kM1SmallestFirst;
      cell.algorithm = algorithm;
      const bool isDownUp = algorithm == core::Algorithm::kDownUp;
      cell.nodeUtilization.add(isDownUp ? 0.12 : 0.10);   // downup higher
      cell.trafficLoad.add(isDownUp ? 0.08 : 0.09);       // downup lower
      cell.hotspotPercent.add(isDownUp ? 12.0 : 16.0);    // downup lower
      cell.leafUtilization.add(isDownUp ? 0.08 : 0.05);   // downup higher
      // Throughput: downup wins at 4 ports but loses at 8 -> "mixed".
      cell.maxAccepted.add(isDownUp ? (ports == 4 ? 0.10 : 0.20)
                                    : (ports == 4 ? 0.08 : 0.25));
      cell.zeroLoadLatency.add(100.0);
      cell.avgPathLength.add(3.0);
      results.cells.push_back(std::move(cell));
    }
  }
  return results;
}

TEST(CompareAlgorithms, CountsWinsAndLossesPerCell) {
  const ExperimentResults results = syntheticResults();
  const auto verdicts =
      compareAlgorithms(results, core::Algorithm::kDownUp,
                        core::Algorithm::kLTurn, paperShapeChecks());
  ASSERT_EQ(verdicts.size(), 5u);

  const auto& nodeUtil = verdicts[0];
  EXPECT_EQ(nodeUtil.metric, "node utilization");
  EXPECT_EQ(nodeUtil.wins, 2u);
  EXPECT_EQ(nodeUtil.losses, 0u);
  EXPECT_TRUE(nodeUtil.holdsEverywhere());
  EXPECT_NEAR(nodeUtil.meanRatio, 1.2, 1e-9);

  const auto& throughput = verdicts[4];
  EXPECT_EQ(throughput.metric, "saturation throughput");
  EXPECT_EQ(throughput.wins, 1u);
  EXPECT_EQ(throughput.losses, 1u);
  EXPECT_FALSE(throughput.holdsEverywhere());
}

TEST(CompareAlgorithms, MissingCellsAreSkipped) {
  ExperimentResults results = syntheticResults();
  results.config.algorithms.push_back(core::Algorithm::kUpDownBfs);
  const auto verdicts =
      compareAlgorithms(results, core::Algorithm::kUpDownBfs,
                        core::Algorithm::kLTurn, paperShapeChecks());
  for (const auto& verdict : verdicts) {
    EXPECT_EQ(verdict.wins + verdict.losses, 0u);
    EXPECT_FALSE(verdict.holdsEverywhere());
  }
}

TEST(PrintShapeVerdicts, FormatsHoldsAndMixed) {
  const ExperimentResults results = syntheticResults();
  const auto verdicts =
      compareAlgorithms(results, core::Algorithm::kDownUp,
                        core::Algorithm::kLTurn, paperShapeChecks());
  std::ostringstream out;
  printShapeVerdicts(out, verdicts);
  const std::string text = out.str();
  EXPECT_NE(text.find("node utilization"), std::string::npos);
  EXPECT_NE(text.find("HOLDS"), std::string::npos);
  EXPECT_NE(text.find("mixed"), std::string::npos);
}

TEST(MarkdownReport, ContainsSectionsAndRows) {
  const ExperimentResults results = syntheticResults();
  std::ostringstream out;
  writeMarkdownReport(results, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# Experiment report"), std::string::npos);
  EXPECT_NE(text.find("## Node utilization"), std::string::npos);
  EXPECT_NE(text.find("## Degree of hot spots (%)"), std::string::npos);
  EXPECT_NE(text.find("| M1 |"), std::string::npos);
  EXPECT_NE(text.find("lturn 4p"), std::string::npos);
  EXPECT_NE(text.find("downup 8p"), std::string::npos);
}

}  // namespace
}  // namespace downup::stats
