#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"

namespace downup::stats {
namespace {

using topo::Topology;
using tree::CoordinatedTree;
using tree::TreePolicy;

TEST(PaperMetrics, HandComputedOnAStar) {
  // Star: hub 0 (degree 4) + leaves 1..4 (degree 1).
  const Topology topo = topo::star(5);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);

  // Hub output channels carry 0.4 each; leaf outputs 0.1 each.
  std::vector<double> channelUtil(topo.channelCount(), 0.0);
  for (topo::NodeId leaf = 1; leaf <= 4; ++leaf) {
    channelUtil[topo.channel(0, leaf)] = 0.4;
    channelUtil[topo.channel(leaf, 0)] = 0.1;
  }
  const PaperMetrics metrics = computePaperMetrics(topo, ct, channelUtil);

  // Node utilization: hub = 4*0.4/4 = 0.4; each leaf = 0.1/1 = 0.1.
  EXPECT_DOUBLE_EQ(metrics.nodeUtilization[0], 0.4);
  for (topo::NodeId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_DOUBLE_EQ(metrics.nodeUtilization[leaf], 0.1);
  }
  EXPECT_DOUBLE_EQ(metrics.meanNodeUtilization, (0.4 + 4 * 0.1) / 5.0);

  // Traffic load = population stddev of {0.4, 0.1 x4} = sqrt(0.0144) = 0.12.
  EXPECT_NEAR(metrics.trafficLoad, 0.12, 1e-12);

  // Every node sits in levels 0-1 of a star tree: hotspot share is 100%.
  EXPECT_DOUBLE_EQ(metrics.hotspotDegreePercent, 100.0);

  // All leaves of the coordinated tree are the star leaves.
  EXPECT_DOUBLE_EQ(metrics.leafUtilization, 0.1);
}

TEST(PaperMetrics, HotspotShareOnADeeperTree) {
  // Line 0-1-2-3 rooted at 0: levels 0,1,2,3.
  const Topology topo = topo::line(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  std::vector<double> channelUtil(topo.channelCount(), 0.0);
  channelUtil[topo.channel(0, 1)] = 0.3;  // node 0 util = 0.3/1
  channelUtil[topo.channel(1, 2)] = 0.1;  // node 1 util = 0.1/2
  channelUtil[topo.channel(3, 2)] = 0.2;  // node 3 util = 0.2/1
  const PaperMetrics metrics = computePaperMetrics(topo, ct, channelUtil);
  // Levels 0-1 hold nodes 0 and 1: (0.3 + 0.05) / (0.3 + 0.05 + 0 + 0.2).
  EXPECT_NEAR(metrics.hotspotDegreePercent, 100.0 * 0.35 / 0.55, 1e-9);
  // The only coordinated-tree leaf is node 3.
  EXPECT_DOUBLE_EQ(metrics.leafUtilization, 0.2);
}

TEST(PaperMetrics, ZeroTrafficIsAllZeros) {
  const Topology topo = topo::ring(6);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const std::vector<double> channelUtil(topo.channelCount(), 0.0);
  const PaperMetrics metrics = computePaperMetrics(topo, ct, channelUtil);
  EXPECT_DOUBLE_EQ(metrics.meanNodeUtilization, 0.0);
  EXPECT_DOUBLE_EQ(metrics.trafficLoad, 0.0);
  EXPECT_DOUBLE_EQ(metrics.hotspotDegreePercent, 0.0);
  EXPECT_DOUBLE_EQ(metrics.leafUtilization, 0.0);
}

TEST(PaperMetrics, RejectsSizeMismatch) {
  const Topology topo = topo::ring(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const std::vector<double> wrongSize(3, 0.0);
  EXPECT_THROW(computePaperMetrics(topo, ct, wrongSize),
               std::invalid_argument);
}

TEST(PaperMetrics, UniformUtilizationHasZeroTrafficLoad) {
  const Topology topo = topo::torus(4, 4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const std::vector<double> channelUtil(topo.channelCount(), 0.25);
  const PaperMetrics metrics = computePaperMetrics(topo, ct, channelUtil);
  EXPECT_DOUBLE_EQ(metrics.meanNodeUtilization, 0.25);
  EXPECT_NEAR(metrics.trafficLoad, 0.0, 1e-12);
}

}  // namespace
}  // namespace downup::stats
