#include "tree/dfs_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/generate.hpp"
#include "util/rng.hpp"

namespace downup::tree {
namespace {

TEST(DfsTree, LineVisitsInOrder) {
  const topo::Topology topo = topo::line(5);
  const DfsTree dt = DfsTree::build(topo);
  for (topo::NodeId v = 0; v < 5; ++v) EXPECT_EQ(dt.order(v), v);
  EXPECT_EQ(dt.parent(0), topo::kInvalidNode);
  for (topo::NodeId v = 1; v < 5; ++v) EXPECT_EQ(dt.parent(v), v - 1);
}

TEST(DfsTree, RingGoesDeepNotWide) {
  const topo::Topology topo = topo::ring(6);
  const DfsTree dt = DfsTree::build(topo);
  // DFS from 0 prefers neighbor 1, then 2, ... producing a path, unlike BFS.
  EXPECT_EQ(dt.order(1), 1u);
  EXPECT_EQ(dt.order(5), 5u);
  EXPECT_EQ(dt.parent(5), 4u);
}

TEST(DfsTree, OrdersAreAPermutation) {
  util::Rng rng(3);
  const topo::Topology topo = topo::randomIrregular(50, {.maxPorts = 4}, rng);
  const DfsTree dt = DfsTree::build(topo, 7);
  EXPECT_EQ(dt.root(), 7u);
  EXPECT_EQ(dt.order(7), 0u);
  std::set<std::uint32_t> orders;
  for (topo::NodeId v = 0; v < 50; ++v) orders.insert(dt.order(v));
  EXPECT_EQ(orders.size(), 50u);
  // Parent always has a smaller DFS index and a real link.
  for (topo::NodeId v = 0; v < 50; ++v) {
    if (v == 7) continue;
    EXPECT_TRUE(topo.hasLink(dt.parent(v), v));
    EXPECT_LT(dt.order(dt.parent(v)), dt.order(v));
  }
}

TEST(DfsTree, ThrowsOnDisconnectedOrBadRoot) {
  topo::Topology topo(4);
  topo.addLink(0, 1);
  EXPECT_THROW(DfsTree::build(topo), std::invalid_argument);
  EXPECT_THROW(DfsTree::build(topo::ring(4), 10), std::invalid_argument);
}

}  // namespace
}  // namespace downup::tree
