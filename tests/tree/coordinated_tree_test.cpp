#include "tree/coordinated_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/generate.hpp"
#include "topology/properties.hpp"

namespace downup::tree {
namespace {

using topo::NodeId;
using topo::Topology;

/// The coordinated tree of Figure 1(c): root v1; preorder v1,v5,v2,v3,v4.
CoordinatedTree figure1Tree(const Topology& topo) {
  // ids: v1=0, v2=1, v3=2, v4=3, v5=4.
  const std::vector<NodeId> parents = {topo::kInvalidNode, 4, 0, 0, 0};
  const std::vector<std::uint32_t> rank = {0, 2, 3, 4, 1};
  return CoordinatedTree::fromParents(topo, parents, 0, rank);
}

TEST(Figure1Tree, CoordinatesMatchThePaper) {
  const Topology topo = topo::paperFigure1();
  const CoordinatedTree ct = figure1Tree(topo);

  // "Y(v1) = 0, X(v2) = 2" (Section 3).
  EXPECT_EQ(ct.y(0), 0u);
  EXPECT_EQ(ct.x(1), 2u);

  // Preorder: v1, v5, v2, v3, v4.
  EXPECT_EQ(ct.x(0), 0u);
  EXPECT_EQ(ct.x(4), 1u);
  EXPECT_EQ(ct.x(2), 3u);
  EXPECT_EQ(ct.x(3), 4u);

  // Levels: v1 root, v5/v3/v4 at level 1, v2 at level 2.
  EXPECT_EQ(ct.y(4), 1u);
  EXPECT_EQ(ct.y(2), 1u);
  EXPECT_EQ(ct.y(3), 1u);
  EXPECT_EQ(ct.y(1), 2u);

  // "v3 is the right node of v5, left node of v4, right-down node of v1":
  EXPECT_GT(ct.x(2), ct.x(4));
  EXPECT_EQ(ct.y(2), ct.y(4));
  EXPECT_LT(ct.x(2), ct.x(3));
  EXPECT_EQ(ct.y(2), ct.y(3));
  EXPECT_GT(ct.x(2), ct.x(0));
  EXPECT_GT(ct.y(2), ct.y(0));

  // Tree links vs cross links.
  EXPECT_TRUE(ct.isTreeLink(0, 4));
  EXPECT_TRUE(ct.isTreeLink(4, 1));
  EXPECT_TRUE(ct.isTreeLink(0, 2));
  EXPECT_TRUE(ct.isTreeLink(0, 3));
  EXPECT_FALSE(ct.isTreeLink(2, 4));
  EXPECT_FALSE(ct.isTreeLink(1, 3));
}

TEST(BuildBfs, M1OnFigure1Topology) {
  const Topology topo = topo::paperFigure1();
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  EXPECT_EQ(ct.root(), 0u);
  // Node 0's neighbors are 2,3,4 -> all children; node 1 discovered via 3
  // (smallest-id BFS order processes node 2 first, but 2's unvisited
  // neighbor set is empty after... node 2 adj = {0,4}; node 3 adj = {0,1}).
  EXPECT_EQ(ct.parent(2), 0u);
  EXPECT_EQ(ct.parent(3), 0u);
  EXPECT_EQ(ct.parent(4), 0u);
  EXPECT_EQ(ct.parent(1), 3u);
  // Preorder M1: 0, then children ascending: 2 (no children), 3 -> 1, 4.
  EXPECT_EQ(ct.x(0), 0u);
  EXPECT_EQ(ct.x(2), 1u);
  EXPECT_EQ(ct.x(3), 2u);
  EXPECT_EQ(ct.x(1), 3u);
  EXPECT_EQ(ct.x(4), 4u);
}

struct TreeCase {
  topo::NodeId nodes;
  unsigned ports;
  std::uint64_t seed;
  TreePolicy policy;
};

class TreePropertyTest : public ::testing::TestWithParam<TreeCase> {};

TEST_P(TreePropertyTest, StructuralInvariants) {
  const auto [nodes, ports, seed, policy] = GetParam();
  util::Rng topoRng(seed);
  const Topology topo = topo::randomIrregular(nodes, {.maxPorts = ports}, topoRng);
  util::Rng treeRng(seed + 1000);
  const CoordinatedTree ct = CoordinatedTree::build(topo, policy, treeRng);

  // X is a permutation of 0..n-1; preorder()[x(v)] == v.
  std::set<std::uint32_t> xs;
  for (NodeId v = 0; v < nodes; ++v) {
    xs.insert(ct.x(v));
    EXPECT_EQ(ct.preorder()[ct.x(v)], v);
  }
  EXPECT_EQ(xs.size(), nodes);
  EXPECT_EQ(*xs.rbegin(), nodes - 1u);

  // Y equals BFS level from the root, for every node (BFS tree property).
  const auto dist = topo::bfsDistances(topo, ct.root());
  for (NodeId v = 0; v < nodes; ++v) EXPECT_EQ(ct.y(v), dist[v]);
  EXPECT_TRUE(ct.isBfsTree(topo));

  // Parent edges exist and descend one level; X(parent) < X(child).
  for (NodeId v = 0; v < nodes; ++v) {
    if (v == ct.root()) {
      EXPECT_EQ(ct.parent(v), topo::kInvalidNode);
      continue;
    }
    const NodeId p = ct.parent(v);
    EXPECT_TRUE(topo.hasLink(p, v));
    EXPECT_EQ(ct.y(v), ct.y(p) + 1);
    EXPECT_LT(ct.x(p), ct.x(v));
  }

  // Level populations sum to n; leaves are exactly the childless nodes.
  std::uint32_t population = 0;
  for (std::uint32_t count : ct.levelPopulation()) population += count;
  EXPECT_EQ(population, nodes);
  const auto leaves = ct.leaves();
  EXPECT_FALSE(leaves.empty());
  for (NodeId leaf : leaves) EXPECT_TRUE(ct.children(leaf).empty());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSizes, TreePropertyTest,
    ::testing::Values(
        TreeCase{16, 4, 1, TreePolicy::kM1SmallestFirst},
        TreeCase{16, 4, 1, TreePolicy::kM2Random},
        TreeCase{16, 4, 1, TreePolicy::kM3LargestFirst},
        TreeCase{64, 4, 2, TreePolicy::kM1SmallestFirst},
        TreeCase{64, 4, 2, TreePolicy::kM2Random},
        TreeCase{64, 4, 2, TreePolicy::kM3LargestFirst},
        TreeCase{128, 8, 3, TreePolicy::kM1SmallestFirst},
        TreeCase{128, 8, 3, TreePolicy::kM2Random},
        TreeCase{128, 8, 3, TreePolicy::kM3LargestFirst},
        TreeCase{9, 2, 4, TreePolicy::kM1SmallestFirst},
        TreeCase{33, 5, 5, TreePolicy::kM2Random}));

TEST(BuildBfs, M1AndM3ReversePreorderOfSiblings) {
  const Topology topo = topo::star(6);
  util::Rng rng(1);
  const CoordinatedTree m1 =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng);
  const CoordinatedTree m3 =
      CoordinatedTree::build(topo, TreePolicy::kM3LargestFirst, rng);
  // Star children of the root: M1 visits 1..5 ascending, M3 descending.
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(m1.x(v), v);
    EXPECT_EQ(m3.x(v), 6 - v);
  }
}

TEST(BuildBfs, M2IsDeterministicGivenSeed) {
  util::Rng topoRng(9);
  const Topology topo = topo::randomIrregular(40, {.maxPorts = 4}, topoRng);
  util::Rng rngA(55);
  util::Rng rngB(55);
  const CoordinatedTree a = CoordinatedTree::build(topo, TreePolicy::kM2Random, rngA);
  const CoordinatedTree b = CoordinatedTree::build(topo, TreePolicy::kM2Random, rngB);
  for (NodeId v = 0; v < 40; ++v) EXPECT_EQ(a.x(v), b.x(v));
}

TEST(BuildBfs, CustomRoot) {
  const Topology topo = topo::line(4);
  util::Rng rng(1);
  const CoordinatedTree ct =
      CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng, 3);
  EXPECT_EQ(ct.root(), 3u);
  EXPECT_EQ(ct.y(0), 3u);
  EXPECT_EQ(ct.depth(), 3u);
}

TEST(BuildBfs, ThrowsOnDisconnectedOrBadRoot) {
  Topology topo(4);
  topo.addLink(0, 1);
  topo.addLink(2, 3);
  util::Rng rng(1);
  EXPECT_THROW(CoordinatedTree::build(topo, TreePolicy::kM1SmallestFirst, rng),
               std::invalid_argument);
  const Topology connected = topo::ring(4);
  EXPECT_THROW(
      CoordinatedTree::build(connected, TreePolicy::kM1SmallestFirst, rng, 9),
      std::invalid_argument);
}

TEST(FromParents, RejectsBadInput) {
  const Topology topo = topo::ring(4);
  // Wrong size.
  EXPECT_THROW(CoordinatedTree::fromParents(topo, std::vector<NodeId>{0, 1}, 0),
               std::invalid_argument);
  // Parent edge not in topology: 0-2 is not a ring link.
  const std::vector<NodeId> badParents = {topo::kInvalidNode, 0, 0, 2};
  EXPECT_THROW(CoordinatedTree::fromParents(topo, badParents, 0),
               std::invalid_argument);
  // Cycle in the "tree": 1<-2, 2<-1.
  const std::vector<NodeId> cyclic = {topo::kInvalidNode, 2, 1, 0};
  EXPECT_THROW(CoordinatedTree::fromParents(topo, cyclic, 0),
               std::invalid_argument);
}

TEST(Lca, OnFigure1Tree) {
  const Topology topo = topo::paperFigure1();
  const CoordinatedTree ct = figure1Tree(topo);
  EXPECT_EQ(ct.lowestCommonAncestor(1, 2), 0u);  // v2 and v3 -> v1
  EXPECT_EQ(ct.lowestCommonAncestor(1, 4), 4u);  // v2 and v5 -> v5
  EXPECT_EQ(ct.lowestCommonAncestor(2, 3), 0u);
  EXPECT_EQ(ct.lowestCommonAncestor(0, 1), 0u);
  EXPECT_EQ(ct.lowestCommonAncestor(3, 3), 3u);
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(toString(TreePolicy::kM1SmallestFirst), "M1");
  EXPECT_EQ(toString(TreePolicy::kM2Random), "M2");
  EXPECT_EQ(toString(TreePolicy::kM3LargestFirst), "M3");
}

}  // namespace
}  // namespace downup::tree
